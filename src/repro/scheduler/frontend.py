"""The serving frontend: admission -> width policy -> replica pool -> batching.

One :class:`ServingFrontend` is the SLA-aware front door over a shared
slimmable weight store:

1. **Admission** fails infeasible requests fast (no compute spent).
2. The **width policy** picks the widest sub-network slice predicted to
   meet the remaining deadline budget.
3. The **replica pool** routes to the least-loaded healthy replica;
   replicas are ejected by heartbeat, and a request whose replica dies
   mid-flight is transparently rerouted — zero lost requests.
4. Per-(replica, width) :class:`~repro.runtime.batching.MicroBatchQueue`
   instances coalesce same-width requests into large batched forwards.

A background health loop drives the pool's heartbeat monitors, and a
watchdog thread **hedges stragglers**: a request still unresolved well
past its predicted latency gets a duplicate at a narrower width on a
different replica; whichever finishes first resolves the caller's future.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

# Module bindings, not name imports: repro.faults.policy imports the
# admission types right back, so the cycle only resolves if both sides
# defer attribute access to call time (annotations stay strings under
# ``from __future__ import annotations``).
import repro.faults.policy as fault_policy
import repro.faults.supervisor as fault_supervisor
from repro.nn import functional as F
from repro.nn.plan import InferencePlan, PlanLadder, compile_width_plans
from repro.runtime.batching import BatchingConfig, DeadlineExceeded, MicroBatchQueue
from repro.scheduler.admission import (
    CRITICAL_PRIORITY,
    SLA,
    AdmissionController,
    AdmissionRejected,
)
from repro.scheduler.pool import Replica, ReplicaPool, ReplicaUnavailable
from repro.scheduler.telemetry import MetricsRegistry
from repro.scheduler.width_policy import WidthPolicy
from repro.slimmable.spec import SubNetSpec
from repro.trace.recorder import (
    LATE,
    LOST,
    OK,
    REJECTED,
    RequestRecord,
    RequestSpec,
    TraceRecorder,
)
from repro.trace.tracer import (
    EVENT_ADMISSION,
    EVENT_BATCH,
    EVENT_ENQUEUE,
    EVENT_EXECUTE,
    EVENT_FAIL,
    EVENT_HEDGE,
    EVENT_HEDGE_LOST,
    EVENT_HEDGE_WON,
    EVENT_REROUTE,
    EVENT_RESOLVE,
    EVENT_SUBMIT,
    EVENT_WIDTH,
    NULL_TRACER,
    Tracer,
)
from repro.utils.config import Config
from repro.utils.logging import get_logger

#: Version of the flat :meth:`SchedulerConfig.to_mapping` wire format.
#: Bump when a knob is renamed or its meaning changes; ``from_mapping``
#: refuses mappings stamped with a *newer* version than it understands.
CONFIG_MAPPING_VERSION = 1


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunables of one serving frontend."""

    replicas: int = 2
    default_sla: SLA = field(default_factory=lambda: SLA(deadline_s=0.05))
    admission_headroom: float = 1.0
    enable_admission: bool = True
    enable_hedging: bool = True
    hedge_factor: float = 4.0   # hedge a request older than factor x predicted
    hedge_min_s: float = 0.004  # ...but never earlier than this
    hedge_ratio: float = 0.1    # hedges may add at most this fraction of load
    warmup: bool = True         # prime the latency EWMAs with one run per width
    max_batch: int = 16
    max_delay_s: float = 0.001
    compile_plans: bool = True  # compile one InferencePlan per allowed width
    plan_workspaces: int = 1    # arenas preallocated per plan (grows on demand)
    conv_backend: str = "im2col"  # plan convolution lowering (see nn.functional.CONV_BACKENDS)
    rows_ladder: Optional[Tuple[int, ...]] = None  # e.g. (1, 4, 16): compile a
    # PlanLadder per width so small flushes run on small arenas (the top rung
    # is always max_batch); None keeps one max_batch-rows plan per width.
    conv_backend_per_rung: Optional[Tuple[Tuple[int, str], ...]] = None
    # ((rows, backend), ...) overriding ``conv_backend`` rung by rung — e.g.
    # ((1, "im2col"), (16, "shifted-gemm")): im2col where gather dominates,
    # shifted-gemm where the GEMM does (the best column of each BENCH_plan
    # grid row).  Requires rows_ladder; unmapped rungs use ``conv_backend``.
    replica_backend: str = "thread"  # "thread" shares one interpreter;
    # "process" forks GIL-free workers over shared-memory weights
    # (see repro.scheduler.procpool).
    supervise: bool = False     # respawn ejected replicas (see faults.supervisor)
    restart_backoff_s: float = 0.05    # supervisor backoff base ...
    restart_backoff_max_s: float = 1.0  # ... and cap between respawn attempts
    restart_budget: int = 3      # deaths tolerated per replica ...
    restart_window_s: float = 30.0  # ... within this sliding window
    retry_policy: Optional[RetryPolicy] = None  # None keeps the legacy
    # unlimited immediate reroute; a policy bounds it with backoff.
    brownout: Optional[BrownoutPolicy] = None  # None disables brown-out;
    # a policy sheds low-priority admissions and clamps width under
    # overload (see faults.policy.BrownoutController).

    def __post_init__(self) -> None:
        if self.replicas <= 0:
            raise ValueError("replicas must be positive")
        if self.restart_backoff_s < 0 or self.restart_backoff_max_s < 0:
            raise ValueError("restart backoffs must be non-negative")
        if self.restart_budget < 1:
            raise ValueError("restart_budget must be at least 1")
        if self.replica_backend not in ("thread", "process"):
            raise ValueError(f"unknown replica backend {self.replica_backend!r}")
        F.check_conv_backend(self.conv_backend)
        if self.rows_ladder is not None and (
            len(self.rows_ladder) == 0 or any(r <= 0 for r in self.rows_ladder)
        ):
            raise ValueError("rows_ladder must be a non-empty tuple of positive ints")
        if self.conv_backend_per_rung is not None:
            if self.rows_ladder is None:
                raise ValueError("conv_backend_per_rung requires rows_ladder")
            for rows, backend in self.conv_backend_per_rung:
                if rows <= 0:
                    raise ValueError("conv_backend_per_rung rows must be positive")
                F.check_conv_backend(backend)
        if self.hedge_factor <= 1.0:
            raise ValueError("hedge_factor must exceed 1.0")
        if not 0.0 <= self.hedge_ratio <= 1.0:
            raise ValueError("hedge_ratio must be in [0, 1]")
        if self.hedge_min_s < 0 or self.max_delay_s < 0:
            raise ValueError("time budgets must be non-negative")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")

    # -- serialization ---------------------------------------------------------
    #
    # The flat mapping below is the *public config wire format*: the offline
    # tuner (repro.tuning) emits it inside ``repro-tuned-config`` artifacts,
    # ``serve/replay --config FILE`` consume it, and the CLI's flag overrides
    # are merged through it.  Nested objects flatten to dotted keys
    # ("sla.deadline_s"); the optional RetryPolicy / BrownoutPolicy flatten to
    # a boolean presence key ("retry", "brownout") plus dotted knobs.

    def to_mapping(self) -> Dict[str, object]:
        """Every knob as a flat, stable-sorted, JSON-serializable mapping.

        ``from_mapping(to_mapping(cfg)) == cfg`` for any valid config, and
        ``json.dumps(..., sort_keys=True)`` of the result is byte-stable —
        the property the tuner's artifact determinism rests on.
        """
        sla = self.default_sla
        mapping: Dict[str, object] = {
            "version": CONFIG_MAPPING_VERSION,
            "replicas": self.replicas,
            "admission_headroom": self.admission_headroom,
            "enable_admission": self.enable_admission,
            "enable_hedging": self.enable_hedging,
            "hedge_factor": self.hedge_factor,
            "hedge_min_s": self.hedge_min_s,
            "hedge_ratio": self.hedge_ratio,
            "warmup": self.warmup,
            "max_batch": self.max_batch,
            "max_delay_s": self.max_delay_s,
            "compile_plans": self.compile_plans,
            "plan_workspaces": self.plan_workspaces,
            "conv_backend": self.conv_backend,
            "rows_ladder": list(self.rows_ladder) if self.rows_ladder else None,
            "conv_backend_per_rung": (
                [[rows, backend] for rows, backend in self.conv_backend_per_rung]
                if self.conv_backend_per_rung
                else None
            ),
            "replica_backend": self.replica_backend,
            "supervise": self.supervise,
            "restart_backoff_s": self.restart_backoff_s,
            "restart_backoff_max_s": self.restart_backoff_max_s,
            "restart_budget": self.restart_budget,
            "restart_window_s": self.restart_window_s,
            "sla.deadline_s": sla.deadline_s,
            "sla.priority": sla.priority,
            "sla.min_width": sla.min_width,
            "sla.max_width": sla.max_width,
            "retry": self.retry_policy is not None,
            "brownout": self.brownout is not None,
        }
        if self.retry_policy is not None:
            mapping.update(
                {
                    "retry.max_retries": self.retry_policy.max_retries,
                    "retry.backoff_base_s": self.retry_policy.backoff_base_s,
                    "retry.backoff_factor": self.retry_policy.backoff_factor,
                    "retry.backoff_max_s": self.retry_policy.backoff_max_s,
                }
            )
        if self.brownout is not None:
            mapping.update(
                {
                    "brownout.enter_queue_depth": self.brownout.enter_queue_depth,
                    "brownout.enter_miss_rate": self.brownout.enter_miss_rate,
                    "brownout.exit_queue_depth": self.brownout.exit_queue_depth,
                    "brownout.exit_miss_rate": self.brownout.exit_miss_rate,
                    "brownout.min_dwell_s": self.brownout.min_dwell_s,
                    "brownout.shed_below_priority": self.brownout.shed_below_priority,
                    "brownout.clamp_width": self.brownout.clamp_width,
                }
            )
        return dict(sorted(mapping.items()))

    @classmethod
    def from_mapping(cls, mapping) -> "SchedulerConfig":
        """Rebuild a config from :meth:`to_mapping` output (or a subset).

        Missing keys keep their dataclass defaults, so a partial mapping is
        a valid *override set* — the CLI builds configs by layering flag
        overrides onto ``--config FILE`` through this.  Unknown keys and
        newer ``version`` values are rejected, never ignored: a typo'd knob
        that silently kept its default would be worse than a crash.
        """
        data = dict(mapping)
        version = data.pop("version", CONFIG_MAPPING_VERSION)
        if not isinstance(version, int) or isinstance(version, bool):
            raise ValueError(f"config mapping version must be an int, got {version!r}")
        if version > CONFIG_MAPPING_VERSION:
            raise ValueError(
                f"config mapping version {version} is newer than this "
                f"build understands ({CONFIG_MAPPING_VERSION})"
            )
        scalar_fields = {
            "replicas", "admission_headroom", "enable_admission",
            "enable_hedging", "hedge_factor", "hedge_min_s", "hedge_ratio",
            "warmup", "max_batch", "max_delay_s", "compile_plans",
            "plan_workspaces", "conv_backend", "replica_backend", "supervise",
            "restart_backoff_s", "restart_backoff_max_s", "restart_budget",
            "restart_window_s",
        }
        sla_fields = {"deadline_s", "priority", "min_width", "max_width"}
        retry_fields = {
            "max_retries", "backoff_base_s", "backoff_factor", "backoff_max_s",
        }
        brownout_fields = {
            "enter_queue_depth", "enter_miss_rate", "exit_queue_depth",
            "exit_miss_rate", "min_dwell_s", "shed_below_priority",
            "clamp_width",
        }
        kwargs: Dict[str, object] = {}
        sla_kwargs: Dict[str, object] = {}
        retry_kwargs: Dict[str, object] = {}
        brownout_kwargs: Dict[str, object] = {}
        retry_flag = data.pop("retry", None)
        brownout_flag = data.pop("brownout", None)
        unknown = []
        for key, value in data.items():
            prefix, _, knob = key.partition(".")
            if key in scalar_fields:
                kwargs[key] = value
            elif key == "rows_ladder":
                kwargs[key] = tuple(value) if value is not None else None
            elif key == "conv_backend_per_rung":
                kwargs[key] = (
                    tuple((rows, backend) for rows, backend in value)
                    if value is not None
                    else None
                )
            elif prefix == "sla" and knob in sla_fields:
                sla_kwargs[knob] = value
            elif prefix == "retry" and knob in retry_fields:
                retry_kwargs[knob] = value
            elif prefix == "brownout" and knob in brownout_fields:
                brownout_kwargs[knob] = value
            else:
                unknown.append(key)
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        if sla_kwargs:
            # deadline_s is SLA's only required field; a partial override
            # set (e.g. just "sla.priority") keeps the dataclass default.
            sla_kwargs.setdefault("deadline_s", 0.05)
            kwargs["default_sla"] = SLA(**sla_kwargs)
        if retry_flag is False and retry_kwargs:
            raise ValueError(
                f"retry is disabled but retry knobs given: {sorted(retry_kwargs)}"
            )
        if retry_flag or (retry_flag is None and retry_kwargs):
            kwargs["retry_policy"] = fault_policy.RetryPolicy(**retry_kwargs)
        if brownout_flag is False and brownout_kwargs:
            raise ValueError(
                f"brownout is disabled but brownout knobs given: "
                f"{sorted(brownout_kwargs)}"
            )
        if brownout_flag or (brownout_flag is None and brownout_kwargs):
            kwargs["brownout"] = fault_policy.BrownoutPolicy(**brownout_kwargs)
        return cls(**kwargs)


class _Entry:
    """One in-flight request's scheduling state."""

    __slots__ = (
        "x", "sla", "arrival", "deadline", "width", "future",
        "exclude", "primary_replica", "hedged", "lock",
        "rid", "trace", "spec",
    )

    def __init__(
        self,
        x: np.ndarray,
        sla: SLA,
        arrival: float,
        *,
        rid: int = -1,
        trace=NULL_TRACER,
        spec: Optional[RequestSpec] = None,
    ) -> None:
        self.x = x
        self.sla = sla
        self.arrival = arrival
        self.deadline = arrival + sla.deadline_s
        self.width: Optional[str] = None
        self.future: "Future[np.ndarray]" = Future()
        self.exclude: Tuple[int, ...] = ()
        self.primary_replica: Optional[int] = None  # where the live leg waits
        self.hedged = False
        self.lock = threading.Lock()
        self.rid = rid          # request id (trace/record identity)
        self.trace = trace      # per-request tracer: sampled-in or NULL_TRACER
        self.spec = spec        # replayed RequestSpec (None for live traffic)


class _HedgeWatchdog:
    """Single thread firing hedge callbacks at scheduled times."""

    def __init__(self, fire) -> None:
        self._fire = fire
        self._heap: List[Tuple[float, int, _Entry]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="hedge-watchdog", daemon=True
        )
        self._thread.start()

    def arm(self, at: float, entry: _Entry) -> None:
        with self._cond:
            if self._closed:
                return
            heapq.heappush(self._heap, (at, next(self._seq), entry))
            self._cond.notify()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._closed and (
                    not self._heap or self._heap[0][0] > time.monotonic()
                ):
                    if self._heap:
                        self._cond.wait(self._heap[0][0] - time.monotonic())
                    else:
                        self._cond.wait()
                if self._closed:
                    return
                _, _, entry = heapq.heappop(self._heap)
            self._fire(entry)


class ServingFrontend:
    """SLA-aware scheduling over a shared slimmable weight store."""

    def __init__(
        self,
        model,
        config: Optional[SchedulerConfig] = None,
        *,
        candidates: Optional[Sequence[SubNetSpec]] = None,
        heartbeat_config: Optional[Config] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        recorder: Optional[TraceRecorder] = None,
    ) -> None:
        self.config = config or SchedulerConfig()
        self.metrics = metrics or MetricsRegistry()
        self.logger = get_logger("scheduler.frontend")
        # Tracing is opt-in: without a tracer every emit call lands on the
        # shared NULL_TRACER no-op, and sampled-out requests bind it too.
        self.tracer = tracer or NULL_TRACER
        self.recorder = recorder
        self._epoch = time.monotonic()  # arrival offsets for recorded specs
        self._rids = itertools.count()
        self._batch_ids = itertools.count()
        net = getattr(model, "net", model)
        self.net = net  # the supervisor's warmup needs the bare net's shape
        if candidates is None:
            candidates = self._default_candidates(model, net)
        # One compiled plan — or, with ``rows_ladder``, one PlanLadder of
        # row-ceiling rungs — per allowed width, all over a single shared
        # packed-weight cache: the per-request resolve/cast/allocate work
        # vanishes from the hot path, and the replicas share the plans
        # (workspace checkout isolates concurrent requests).  A ladder
        # dispatches each flush to the smallest rung that fits, so mostly-
        # small traffic touches mostly-small arenas.  ``conv_backend``
        # selects the convolution lowering for every compiled width.
        self.plans: Dict[str, Union[InferencePlan, PlanLadder]] = {}
        if self.config.compile_plans:
            self.plans = compile_width_plans(
                model,
                list(candidates),
                batch_rows=self.config.max_batch,
                workspaces=self.config.plan_workspaces,
                conv_backend=self.config.conv_backend,
                rows_ladder=self.config.rows_ladder,
                conv_backend_per_rung=self.config.conv_backend_per_rung,
            )
        self.policy = WidthPolicy(
            net,
            candidates,
            plan_flops={w: p.flops_per_image() for w, p in self.plans.items()},
        )
        self.admission = AdmissionController(
            headroom=self.config.admission_headroom, metrics=self.metrics
        )
        self.brownout: Optional[BrownoutController] = None
        if self.config.brownout is not None:
            self.brownout = fault_policy.BrownoutController(
                self.config.brownout, metrics=self.metrics, tracer=self.tracer
            )
        process_options = None
        if self.config.replica_backend == "process":
            # Workers compile their *own* plans (packed blocks and
            # workspaces must live in worker memory, GIL-free); this
            # forwards the parent's plan recipe so both backends run the
            # same compiled configuration.
            process_options = {
                "plan_options": {
                    "compile": self.config.compile_plans,
                    "batch_rows": self.config.max_batch,
                    "workspaces": self.config.plan_workspaces,
                    "conv_backend": self.config.conv_backend,
                    "rows_ladder": self.config.rows_ladder,
                    "conv_backend_per_rung": self.config.conv_backend_per_rung,
                }
            }
        self.pool = ReplicaPool(
            model,
            self.config.replicas,
            config=heartbeat_config,
            metrics=self.metrics,
            plans=self.plans,
            backend=self.config.replica_backend,
            process_options=process_options,
        )
        self._queues: Dict[Tuple[int, str], MicroBatchQueue] = {}
        self._queues_lock = threading.Lock()
        self._closing = False  # submit() stops accepting
        self._closed = False   # dispatch (incl. reroutes) fully stopped
        self._watchdog = _HedgeWatchdog(self._hedge) if self.config.enable_hedging else None
        self._health_stop = threading.Event()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="pool-health", daemon=True
        )
        self._health_thread.start()
        if self.config.warmup:
            self._warmup(net)
        self.supervisor: Optional[ReplicaSupervisor] = None
        if self.config.supervise:
            # Started after warmup so the supervisor never races the
            # initial priming runs on replica 0.
            self.supervisor = fault_supervisor.ReplicaSupervisor(
                self,
                backoff_base_s=self.config.restart_backoff_s,
                backoff_max_s=self.config.restart_backoff_max_s,
                restart_budget=self.config.restart_budget,
                budget_window_s=self.config.restart_window_s,
                warmup=self.config.warmup,
            ).start()

    @staticmethod
    def _default_candidates(model, net) -> List[SubNetSpec]:
        """Certified standalone *lower* sub-networks, narrowest first.

        Upper sub-networks are partitioning alternates sharing the lower
        family's latency tiers, so the width ladder uses the nested lower
        slices (each strictly wider = strictly more accurate).  A family
        that certifies *no* standalone sub-network (a Static DNN) gets
        only the full width: serving a narrower slice it never trained
        standalone would return garbage, so the scheduler must not
        downgrade to it under load.
        """
        spec = net.width_spec
        certified = getattr(model, "certified_standalone", None)
        lowers = spec.lower_family()
        if certified is None:
            return lowers  # bare net: every slice is fair game
        chosen = [s for s in lowers if s.name in certified]
        return chosen if chosen else [spec.full()]

    def _warmup(self, net) -> None:
        """One serial forward per width on replica 0: primes the EWMAs so the
        first real requests see calibrated wall-clock predictions."""
        x = np.zeros((1, net.in_channels, net.image_size, net.image_size))
        replica = self.pool.replicas[0]
        for spec in self.policy.candidates:
            with self.metrics.timer("frontend.warmup_s") as timer:
                replica.run(x, spec.name)
            self.policy.observe(spec.name, timer.elapsed)
            self.metrics.ewma("frontend.row_service_s").observe(timer.elapsed)
        if self.config.replica_backend == "process":
            # Process workers compile plans per-process; prime the rest so
            # no request pays a mid-trace compile stall (untimed — the
            # EWMAs were calibrated on worker 0 above).
            for other in self.pool.replicas[1:]:
                for spec in self.policy.candidates:
                    other.run(x, spec.name)

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        x: np.ndarray,
        sla: Optional[SLA] = None,
        *,
        spec: Optional[RequestSpec] = None,
    ) -> "Future[np.ndarray]":
        """Schedule one request; the future resolves with its output rows.

        The future fails with :class:`AdmissionRejected` (fail-fast, no
        compute spent) when the SLA is infeasible, or with
        :class:`ReplicaUnavailable` when the whole pool is dead.

        ``spec`` is the replayed :class:`RequestSpec` when a
        :class:`~repro.trace.replay.TraceReplayer` drives this frontend:
        it pins the request's trace/record identity to the corpus id (so
        sampling decisions and recorded artifacts line up across replays)
        and is written verbatim into the recorded artifact.
        """
        if self._closing:
            raise RuntimeError("submit on a closed ServingFrontend")
        sla = sla or self.config.default_sla
        rid = spec.request_id if spec is not None else next(self._rids)
        trace = self.tracer if self.tracer.sample(rid) else NULL_TRACER
        entry = _Entry(x, sla, time.monotonic(), rid=rid, trace=trace, spec=spec)
        self.metrics.counter("frontend.requests").inc()
        trace.emit(
            rid,
            EVENT_SUBMIT,
            deadline_s=sla.deadline_s,
            priority=sla.priority,
            rows=int(x.shape[0]) if x.ndim >= 1 else 1,
        )

        browned_out = False
        if self.brownout is not None:
            # Pressure signals: live pending across the whole pool plus the
            # deadline-miss EWMA (fed only by served outcomes and losses,
            # never by sheds — shedding must not keep brown-out engaged).
            depth = sum(r.pending for r in self.pool.replicas)
            miss = self.metrics.ewma("frontend.miss_rate").value
            browned_out = self.brownout.update(depth, miss)
            if browned_out and self.brownout.should_shed(sla.priority):
                self.metrics.counter("frontend.brownout_sheds").inc()
                exc = fault_policy.BrownoutShed("brown-out: low-priority admission shed")
                self._classify_failure(exc)
                entry.future.set_exception(exc)
                trace.emit(rid, EVENT_FAIL, error="BrownoutShed")
                self._finalize(entry, REJECTED, None)
                return entry.future

        floor = self.policy.predict(
            self.policy.narrowest(sla.min_width, sla.max_width).name
        )
        healthy = self.pool.healthy()
        least_pending = min((r.pending for r in healthy), default=0)
        # Queue wait = requests already ahead on the least-loaded replica
        # times the measured per-row service rate of the live width mix
        # (batching amortisation included, since the EWMA is per batched
        # row).  Before any batch has run, fall back to the narrowest
        # width's predicted batch time spread over a full batch.
        row_time = self.metrics.ewma("frontend.row_service_s").value
        if row_time is None:
            row_time = floor / self.config.max_batch
        queue_wait = least_pending * row_time
        if self.config.enable_admission:
            decision = self.admission.decide_remaining(
                sla,
                remaining_s=entry.deadline - time.monotonic(),
                queue_wait_s=queue_wait,
                service_floor_s=floor,
            )
            trace.emit(
                rid,
                EVENT_ADMISSION,
                admitted=decision.admitted,
                reason=decision.reason,
                estimated_s=decision.estimated_s,
                queue_wait_s=queue_wait,
            )
            if not decision.admitted:
                self.metrics.counter("frontend.rejected").inc()
                exc = AdmissionRejected(decision.reason)
                self._classify_failure(exc)
                entry.future.set_exception(exc)
                trace.emit(rid, EVENT_FAIL, error="AdmissionRejected")
                self._finalize(entry, REJECTED, None)
                return entry.future

        budget = (entry.deadline - time.monotonic()) - queue_wait
        if browned_out and self.brownout.policy.clamp_width:
            # Overload valve: serve the narrowest slice each SLA allows —
            # quality traded for throughput until pressure subsides.
            spec_w = self.policy.narrowest(sla.min_width, sla.max_width)
            predicted = self.policy.predict(spec_w.name)
            self.metrics.counter("frontend.brownout_clamped").inc()
        else:
            spec_w, predicted = self.policy.choose(
                max(budget, 0.0), min_width=sla.min_width, max_width=sla.max_width
            )
        entry.width = spec_w.name
        self.metrics.counter(f"frontend.width.{spec_w.name}").inc()
        trace.emit(
            rid,
            EVENT_WIDTH,
            width=spec_w.name,
            predicted_s=predicted,
            budget_s=max(budget, 0.0),
        )
        # Critical-priority requests were admitted on "a late answer beats
        # none", so their leg carries no fail-fast deadline.
        leg_deadline = entry.deadline if sla.priority < CRITICAL_PRIORITY else None
        self._dispatch(entry, spec_w.name, deadline=leg_deadline, primary=True)
        if self._watchdog is not None:
            # Hedge a true straggler, not ordinary backlog: no earlier than
            # several predicted service times AND half the remaining budget
            # — under a burst every request is "old", and hedging them all
            # would double the overload.
            now = time.monotonic()
            hedge_at = now + max(
                self.config.hedge_min_s,
                self.config.hedge_factor * predicted,
                0.5 * (entry.deadline - now),
            )
            self._watchdog.arm(hedge_at, entry)
        return entry.future

    # -- dispatch / completion -------------------------------------------------

    def _queue_for(self, replica: Replica, width: str) -> MicroBatchQueue:
        key = (replica.index, width)
        with self._queues_lock:
            # Checked under the same lock close() holds for its final
            # sweep: either this insertion happens before the sweep (and
            # is swept) or _closed is already visible here and refused.
            if self._closed:
                raise RuntimeError("frontend closed")
            if key not in self._queues:
                batching = BatchingConfig(
                    max_batch=self.config.max_batch,
                    max_delay_s=self.config.max_delay_s,
                )
                # One mutable cell shared by the two collector-thread hooks
                # below: _on_batch (membership, runs first) stashes the
                # batch id and tags, _run_parts (execution) reads them.
                # Safe without a lock — each queue has exactly one
                # collector thread, and both hooks run on it.
                batch_ctx: Dict[str, object] = {}

                def _on_batch(tags, rows, r=replica, w=width, ctx=batch_ctx) -> None:
                    bid = next(self._batch_ids)
                    ctx["id"], ctx["tags"] = bid, tags
                    for tag in tags:
                        tag.trace.emit(
                            tag.rid,
                            EVENT_BATCH,
                            batch=bid,
                            rows=rows,
                            replica=r.index,
                            width=w,
                        )

                def _run_parts(parts, r=replica, w=width, ctx=batch_ctx) -> np.ndarray:
                    # Observe *pure* service time (one batched forward), not
                    # dispatch-to-done latency: queue wait is accounted
                    # separately from live pending counts, so backlog never
                    # poisons the width calibration.  The observation is
                    # deliberately per-batch, not per-row: a request rides
                    # its whole batch, so "one batched forward at the live
                    # batch-size mix" is exactly the service time its
                    # deadline budget must absorb.  The queue hands over the
                    # raw per-request arrays: a compiled plan scatters their
                    # rows straight into its input arena, so the batch is
                    # never concatenated into a temporary.
                    with self.metrics.timer("frontend.batch_service_s") as timer:
                        out = r.run_parts(parts, w)
                    service = timer.elapsed
                    self.policy.observe(w, service)
                    # Pooled per-row rate over the live width mix: pending
                    # rows x this EWMA estimates queue wait at admission.
                    self.metrics.ewma("frontend.row_service_s").observe(
                        service / out.shape[0]
                    )
                    tags = ctx.get("tags", ())
                    if any(tag.trace.enabled for tag in tags):
                        info = self._execution_info(w, parts)
                        for tag in tags:
                            tag.trace.emit(
                                tag.rid,
                                EVENT_EXECUTE,
                                batch=ctx.get("id"),
                                service_s=service,
                                **info,
                            )
                    return out

                self._queues[key] = MicroBatchQueue(
                    run_batch_parts=_run_parts, config=batching, on_batch=_on_batch
                )
            return self._queues[key]

    def _execution_info(self, width: str, parts: Sequence[np.ndarray]) -> Dict[str, object]:
        """How this flush actually executed: plan rung, eager fallback, backend."""
        rows = sum(int(p.shape[0]) for p in parts)
        plan = self.plans.get(width)
        if plan is None:
            return {"mode": "eager", "rows": rows}
        if isinstance(plan, PlanLadder):
            rung = plan.rung_for(rows) if plan.accepts_parts(parts) else None
            if rung is None:
                return {"mode": "eager", "rows": rows}
            return {
                "mode": "plan",
                "rows": rows,
                "plan_rows": rung.batch_rows,
                "conv_backend": rung.conv_backend,
                "ladder": True,
            }
        if not plan.accepts_parts(parts):
            return {"mode": "eager", "rows": rows}
        return {
            "mode": "plan",
            "rows": rows,
            "plan_rows": plan.batch_rows,
            "conv_backend": plan.conv_backend,
        }

    def _dispatch(
        self,
        entry: _Entry,
        width: str,
        *,
        exclude: Tuple[int, ...] = (),
        deadline: Optional[float] = None,
        primary: bool = False,
        leg: str = "primary",
    ) -> None:
        """Queue one leg of a request on a routed replica.

        ``deadline`` is forwarded to the micro-batch queue's fail-fast
        check on the *initial* leg only; reroute and hedge legs carry no
        deadline because once work was admitted the plane commits to
        producing a result (a late answer is a miss, never a loss).
        ``leg`` labels the dispatch for tracing and hedge-outcome
        accounting: ``"primary"``, ``"reroute"`` or ``"hedge"``.
        """
        if self._closed:
            self._fail(entry, ReplicaUnavailable("frontend closed"))
            return
        try:
            replica = self.pool.route(exclude=exclude)
        except ReplicaUnavailable as exc:
            self._fail(entry, exc)
            return
        if primary:
            with entry.lock:
                entry.primary_replica = replica.index
        entry.trace.emit(
            entry.rid, EVENT_ENQUEUE, replica=replica.index, width=width, leg=leg
        )
        try:
            inner = self._queue_for(replica, width).submit(
                entry.x, deadline=deadline, tag=entry
            )
        except (RuntimeError, ValueError) as exc:
            # Closed queue (frontend shutting down under a reroute/hedge) or
            # an invalid payload; either way the routed replica's pending
            # count must be released before the future is failed.
            replica.finish()
            self._fail(entry, exc if isinstance(exc, ValueError) else ReplicaUnavailable(str(exc)))
            return
        inner.add_done_callback(lambda f: self._on_done(entry, replica, width, f, leg))

    def _on_done(
        self,
        entry: _Entry,
        replica: Replica,
        width: str,
        inner: "Future[np.ndarray]",
        leg: str = "primary",
    ) -> None:
        replica.finish()
        exc = None if inner.cancelled() else inner.exception()
        if not inner.cancelled() and exc is None:
            self._resolve(entry, inner.result(), leg=leg)
            return
        if isinstance(exc, ReplicaUnavailable):
            # The endpoint died under this request: eject it through the
            # heartbeat state machine and reroute to a survivor.
            self.pool.report_failure(replica)
            if entry.future.done():
                return
            self.metrics.counter("frontend.reroutes").inc()
            with entry.lock:
                entry.exclude = entry.exclude + (replica.index,)
                exclude = entry.exclude
            self.logger.warning(
                "replica %d lost mid-request; rerouting at width %s", replica.index, width
            )
            entry.trace.emit(
                entry.rid, EVENT_REROUTE, dead_replica=replica.index, width=width
            )
            retry = self.config.retry_policy
            if retry is not None:
                # Attempt number = replicas already burned on this request;
                # the policy answers "retry, and after how long?" against
                # the remaining deadline budget.  Critical priority never
                # gives up (a late answer beats none), but still backs off.
                attempt = len(exclude)
                remaining = entry.deadline - time.monotonic()
                critical = entry.sla.priority >= CRITICAL_PRIORITY
                delay = retry.delay_for(attempt, remaining, critical=critical)
                if delay is None:
                    if remaining <= 0:
                        # The deadline expired while rerouting: that is a
                        # miss, not an infrastructure loss — classify it
                        # with the other expired-deadline paths.
                        self._fail(
                            entry,
                            DeadlineExceeded(
                                "deadline expired while rerouting"
                            ),
                        )
                    else:
                        self._fail(
                            entry,
                            fault_policy.RetryExhausted(
                                f"retry budget exhausted after {attempt} attempts"
                            ),
                        )
                    return
                self.metrics.counter("frontend.retries").inc()
                if delay > 0:
                    timer = threading.Timer(
                        delay,
                        self._dispatch,
                        args=(entry, width),
                        kwargs={"exclude": exclude, "primary": True, "leg": "reroute"},
                    )
                    timer.daemon = True
                    timer.start()
                    return
            self._dispatch(entry, width, exclude=exclude, primary=True, leg="reroute")
            return
        if isinstance(exc, DeadlineExceeded):
            # The initial leg expired before it could even enter a batch
            # (fail-fast in the queue): a miss, recorded distinctly from
            # infrastructure failures.
            self.metrics.counter("frontend.expired").inc()
        self._fail(entry, exc or RuntimeError("request cancelled"))

    def _hedge(self, entry: _Entry) -> None:
        """Watchdog callback: duplicate a straggler at a narrower width.

        Subject to the hedge budget: duplicated work may add at most
        ``hedge_ratio`` of total traffic, so a backlog where *every*
        request looks old cannot trigger a load-doubling hedge storm.
        """
        with entry.lock:
            if entry.future.done() or entry.hedged:
                return
            entry.hedged = True
            hedge_exclude = entry.exclude
            # Steer the hedge off the replica where the straggling leg
            # waits — a duplicate behind the same backlog only doubles that
            # replica's load.  route() still falls back to it when nothing
            # else is healthy.
            if entry.primary_replica is not None:
                hedge_exclude = hedge_exclude + (entry.primary_replica,)
        budget = self.config.hedge_ratio * self.metrics.counter("frontend.requests").value
        if self.metrics.counter("frontend.hedges").value + 1 > budget:
            self.metrics.counter("frontend.hedges_suppressed").inc()
            return
        narrower = self.policy.narrower_than(entry.width, entry.sla.min_width)
        width = (narrower or self.policy.narrowest(entry.sla.min_width)).name
        self.metrics.counter("frontend.hedges").inc()
        entry.trace.emit(
            entry.rid, EVENT_HEDGE, width=width, primary_width=entry.width
        )
        self._dispatch(entry, width, exclude=hedge_exclude, leg="hedge")

    def _resolve(self, entry: _Entry, result: np.ndarray, *, leg: str = "primary") -> None:
        try:
            entry.future.set_result(result)
        except InvalidStateError:
            return  # the other leg of a hedge won
        latency = time.monotonic() - entry.arrival
        self.metrics.histogram("frontend.latency").observe(latency)
        self.metrics.counter("frontend.completed").inc()
        on_time = time.monotonic() <= entry.deadline
        if on_time:
            self.metrics.counter("frontend.completed_within_deadline").inc()
        else:
            self.metrics.counter("frontend.completed_late").inc()
        # Deadline-miss EWMA: one of the brown-out controller's two
        # pressure signals (the other is live queue depth).
        self.metrics.ewma("frontend.miss_rate").observe(0.0 if on_time else 1.0)
        if entry.hedged:
            # Exactly one leg reaches this point (the future is a
            # single-assignment gate), so the winner's identity is exact.
            won = leg == "hedge"
            entry.trace.emit(
                entry.rid,
                EVENT_HEDGE_WON if won else EVENT_HEDGE_LOST,
                leg=leg,
            )
            self.metrics.counter(
                "frontend.hedge_wins" if won else "frontend.hedge_losses"
            ).inc()
        entry.trace.emit(
            entry.rid, EVENT_RESOLVE, latency_s=latency, on_time=on_time, leg=leg
        )
        self._finalize(entry, OK if on_time else LATE, latency)

    def _classify_failure(self, exc: BaseException) -> str:
        """Count the terminal failure under its distinct cause.

        Most-specific first: the exception hierarchy nests (BrownoutShed
        is an AdmissionRejected is a DeadlineExceeded; RetryExhausted is
        a ReplicaUnavailable), and each cause must land in exactly one
        ``frontend.failures.<cause>`` counter.
        """
        if isinstance(exc, fault_policy.BrownoutShed):
            cause = "brownout_shed"
        elif isinstance(exc, AdmissionRejected):
            cause = "admission_rejected"
        elif isinstance(exc, DeadlineExceeded):
            cause = "deadline_expired"
        elif isinstance(exc, fault_policy.RetryExhausted):
            cause = "retry_exhausted"
        elif isinstance(exc, ReplicaUnavailable):
            cause = "replica_unavailable"
        else:
            cause = "error"
        self.metrics.counter(f"frontend.failures.{cause}").inc()
        return cause

    def _fail(self, entry: _Entry, exc: BaseException) -> None:
        try:
            entry.future.set_exception(exc)
        except InvalidStateError:
            return
        self.metrics.counter("frontend.failed").inc()
        self._classify_failure(exc)
        entry.trace.emit(entry.rid, EVENT_FAIL, error=type(exc).__name__)
        outcome = REJECTED if isinstance(exc, DeadlineExceeded) else LOST
        if outcome == LOST:
            # A lost request is the hardest miss signal brown-out sees;
            # rejections and sheds deliberately don't feed it (a shedding
            # brown-out must not keep itself engaged).
            self.metrics.ewma("frontend.miss_rate").observe(1.0)
        self._finalize(entry, outcome, None)

    def _finalize(self, entry: _Entry, outcome: str, latency: Optional[float]) -> None:
        """Terminal bookkeeping: assemble and persist the request's record.

        Runs exactly once per request (guarded by the future's
        single-assignment in :meth:`_resolve` / :meth:`_fail`).  The
        request's events are *taken* from the tracer here, so the
        per-request index stays bounded by in-flight traced requests.
        """
        events = entry.trace.take(entry.rid)
        if self.recorder is None:
            return
        spec = entry.spec or RequestSpec(
            request_id=entry.rid,
            arrival_s=entry.arrival - self._epoch,
            deadline_s=entry.sla.deadline_s,
            priority=entry.sla.priority,
            min_width=entry.sla.min_width,
            max_width=entry.sla.max_width,
        )
        self.recorder.record(
            RequestRecord(
                spec=spec,
                outcome=outcome,
                width=entry.width,
                latency_s=latency,
                events=tuple(e.to_json() for e in events),
            )
        )

    def invalidate_replica_queues(self, index: int) -> None:
        """Retire the per-(replica, width) queues bound to a replaced slot.

        The queue closures capture the *replica object*, so after the
        supervisor adopts a fresh one the old queues would keep running
        batches against the dead peer.  Closing them drains any pending
        entries through the dead replica's ``run_parts`` — which raises
        ``ReplicaUnavailable`` and reroutes each request to a survivor —
        and the next dispatch to this slot lazily builds fresh queues
        around the adopted replica.  The closes run outside the queues
        lock: a drain triggers reroutes whose ``_queue_for`` needs it.
        """
        with self._queues_lock:
            stale = [
                self._queues.pop(key)
                for key in [k for k in self._queues if k[0] == index]
            ]
        for queue in stale:
            queue.close(timeout=5.0)

    # -- background health -----------------------------------------------------

    def _health_loop(self) -> None:
        interval = max(self.pool.heartbeat_interval_s, 1e-3)
        while not self._health_stop.wait(interval):
            for replica in self.pool.check_health():
                self.logger.warning("health loop ejected replica %d", replica.index)

    # -- lifecycle -------------------------------------------------------------

    def report(self) -> Dict:
        """JSON-friendly snapshot: metrics + width-policy calibration."""
        snapshot = self.metrics.snapshot()
        with self._queues_lock:
            queues = dict(self._queues)
        report = {
            "metrics": snapshot,
            "calibration": self.policy.calibration_snapshot(),
            "replicas": [
                {"index": r.index, "alive": r.alive, "pending": r.pending}
                for r in self.pool.replicas
            ],
            # Per-(replica, width) micro-batch stats, copied under each
            # queue's stats lock (readers never race the flush thread).
            "batching": {
                f"{replica}:{width}": queue.stats.snapshot()
                for (replica, width), queue in sorted(queues.items())
            },
        }
        failures = self.metrics.counters_with_prefix("frontend.failures.")
        if failures:
            report["failures"] = failures
        if self.brownout is not None:
            report["brownout"] = self.brownout.status()
        if self.supervisor is not None:
            report["supervisor"] = self.supervisor.status()
        if self.tracer.enabled:
            report["trace"] = self.tracer.stats()
        workers = self._worker_stats(snapshot)
        if workers:
            report["workers"] = workers
        return report

    def _worker_stats(self, snapshot: Dict) -> List[Dict]:
        """Per-worker rows / repacks / measured rows/s (process backend)."""
        counters = snapshot["counters"]
        ewmas = snapshot["ewmas"]
        stats = []
        for replica in self.pool.replicas:
            label = f"worker.{replica.index}"
            if f"{label}.rows" not in counters and f"{label}.repacks" not in counters:
                continue
            rate = ewmas.get(f"{label}.rows_per_s", {})
            stats.append(
                {
                    "worker": replica.index,
                    "alive": replica.alive,
                    "rows": counters.get(f"{label}.rows", 0),
                    "batches": counters.get(f"{label}.batches", 0),
                    "repacks": counters.get(f"{label}.repacks", 0),
                    "rows_per_s": rate.get("value"),
                }
            )
        return stats

    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Drain every queue, stop the watchdog and the health loop.

        Draining happens in rounds with rerouting still enabled: if a
        replica dies while its queue drains, the displaced requests spawn
        fresh queues on survivors, which the next round drains too — so a
        mid-close failure still loses zero requests.
        """
        if self._closing:
            return
        self._closing = True
        # The supervisor drains first: a respawn landing mid-close would
        # adopt a replica nothing will ever route to (and invalidate
        # queues the drain rounds below are trying to empty).
        if self.supervisor is not None:
            self.supervisor.close(timeout=timeout)
        # Stop the watchdog first: a hedge firing mid-drain could insert a
        # queue after the final drain round and leak its collector thread.
        # Reroutes stay enabled throughout — they run synchronously inside
        # each queue's close(), so every round catches what they spawn.
        if self._watchdog is not None:
            self._watchdog.close()
        while True:
            with self._queues_lock:
                if not self._queues:
                    break
                queues = list(self._queues.values())
                self._queues.clear()
            for queue in queues:
                queue.close(timeout=timeout)
        # Final sweep: a submit() that raced past the _closing check may
        # have inserted a queue between the last drain round and now.
        # Setting _closed under the queues lock makes this exhaustive:
        # _queue_for refuses insertions once _closed is visible, and any
        # insertion that won the lock first is captured in the snapshot.
        with self._queues_lock:
            self._closed = True
            stragglers = list(self._queues.values())
            self._queues.clear()
        for queue in stragglers:
            queue.close(timeout=timeout)
        self._health_stop.set()
        self._health_thread.join(timeout=timeout)
        # Last: process workers shut down and unlink their shm rings (a
        # no-op for thread replicas).  After the queue drain nothing can
        # still be in flight on them.
        self.pool.close()

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
