"""SLA descriptors and fail-fast admission control.

Every request entering the serving control plane carries an :class:`SLA`:
a latency deadline, a priority, and optional bounds on which sub-network
widths may serve it.  The :class:`AdmissionController` rejects, *before
any compute is spent*, requests whose deadline is already infeasible
given the live queue depth and the fastest service time any allowed
width could deliver — the paper's "serve what the hardware allows"
stance applied per request: a request that cannot possibly meet its
deadline only steals capacity from requests that still can.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.runtime.batching import DeadlineExceeded
from repro.scheduler.telemetry import MetricsRegistry

#: Priority at or above which a request is never rejected for estimated
#: infeasibility (it is still failed fast once its deadline has actually
#: passed).  Operators reserve this for traffic where a late answer is
#: better than no answer.
CRITICAL_PRIORITY = 1


class AdmissionRejected(DeadlineExceeded):
    """Fail-fast rejection: the SLA cannot be met, so no work is queued."""


@dataclass(frozen=True)
class SLA:
    """Per-request service-level descriptor.

    Args:
        deadline_s: latency budget from arrival to completed response.
        priority: 0 = best-effort; >= :data:`CRITICAL_PRIORITY` bypasses
            the feasibility estimate (only an already-expired deadline is
            rejected).
        min_width: narrowest sub-network name acceptable to the caller
            (quality floor); ``None`` = any.
        max_width: widest sub-network name the caller wants (latency /
            cost ceiling); ``None`` = any.
    """

    deadline_s: float
    priority: int = 0
    min_width: Optional[str] = None
    max_width: Optional[str] = None

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.priority < 0:
            raise ValueError("priority must be non-negative")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    reason: str
    estimated_s: float  # predicted queue wait + floor service time

    def raise_if_rejected(self) -> None:
        if not self.admitted:
            raise AdmissionRejected(self.reason)


class AdmissionController:
    """Decides, per request, whether its deadline is still reachable.

    The feasibility estimate is deliberately simple and cheap:
    ``queue_wait + service_floor <= budget * headroom`` where
    ``service_floor`` is the calibrated latency of the *narrowest* width
    the SLA allows (the best the plane could possibly do) and
    ``queue_wait`` is the caller's live estimate of time spent behind
    already-admitted work.  ``headroom > 1`` admits optimistically (useful
    when the wait estimate is known to be conservative), ``< 1``
    pessimistically.
    """

    def __init__(
        self, *, headroom: float = 1.0, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        if headroom <= 0:
            raise ValueError("headroom must be positive")
        self.headroom = headroom
        self.metrics = metrics or MetricsRegistry()

    def decide(
        self, sla: SLA, *, queue_wait_s: float, service_floor_s: float
    ) -> AdmissionDecision:
        """Assess one request at arrival time (budget = full ``sla.deadline_s``)."""
        return self.decide_remaining(
            sla, remaining_s=sla.deadline_s,
            queue_wait_s=queue_wait_s, service_floor_s=service_floor_s,
        )

    def decide_remaining(
        self,
        sla: SLA,
        *,
        remaining_s: float,
        queue_wait_s: float,
        service_floor_s: float,
    ) -> AdmissionDecision:
        """Assess with an explicitly remaining budget (clock already running)."""
        estimated = queue_wait_s + service_floor_s
        if remaining_s <= 0:
            self.metrics.counter("admission.rejected_expired").inc()
            return AdmissionDecision(
                False, "deadline already expired at admission", estimated
            )
        if sla.priority >= CRITICAL_PRIORITY:
            self.metrics.counter("admission.admitted").inc()
            return AdmissionDecision(True, "critical priority", estimated)
        if estimated > remaining_s * self.headroom:
            self.metrics.counter("admission.rejected_infeasible").inc()
            return AdmissionDecision(
                False,
                f"infeasible: estimated {estimated * 1e3:.2f}ms "
                f"(wait {queue_wait_s * 1e3:.2f}ms + floor {service_floor_s * 1e3:.2f}ms) "
                f"> budget {remaining_s * 1e3:.2f}ms",
                estimated,
            )
        self.metrics.counter("admission.admitted").inc()
        return AdmissionDecision(True, "feasible", estimated)
