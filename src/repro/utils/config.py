"""A small immutable configuration record with validation helpers.

Experiments and trainers accept plain keyword arguments, but the experiment
harness (:mod:`repro.experiments`) passes structured configs around and needs
round-tripping to/from plain dicts (for JSON reports).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping


@dataclass(frozen=True)
class Config:
    """Immutable string-keyed configuration mapping.

    Supports attribute-style reads for convenience::

        cfg = Config({"epochs": 3, "lr": 0.1})
        cfg.epochs  # 3
        cfg["lr"]   # 0.1

    Well-known key groups consumed elsewhere:

    * ``inference_dtype`` / ``training_dtype`` / ``wire_dtype`` — see
      :meth:`dtype_policy`;
    * ``heartbeat_threshold`` / ``heartbeat_interval_s`` — failure
      detection cadence, read by
      :meth:`repro.runtime.monitor.HeartbeatMonitor.from_config` (used by
      both the live master/worker path and the scheduler's replica pool).
    """

    values: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key in self.values:
            if not isinstance(key, str):
                raise TypeError(f"Config keys must be strings, got {key!r}")

    def __getitem__(self, key: str) -> Any:
        return self.values[key]

    def __getattr__(self, key: str) -> Any:
        # Only called when normal attribute lookup fails.
        try:
            return self.values[key]
        except KeyError:
            raise AttributeError(key) from None

    def __contains__(self, key: str) -> bool:
        return key in self.values

    def __iter__(self) -> Iterator[str]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)

    def updated(self, **overrides: Any) -> "Config":
        """Return a new Config with ``overrides`` applied."""
        merged = dict(self.values)
        merged.update(overrides)
        return Config(merged)

    def require(self, *keys: str) -> "Config":
        """Raise ``KeyError`` listing any missing required keys."""
        missing = [k for k in keys if k not in self.values]
        if missing:
            raise KeyError(f"Config missing required keys: {missing}")
        return self

    def dtype_policy(self) -> "DtypePolicy":
        """The dtype policy this config selects (defaults when keys absent).

        Recognised keys: ``inference_dtype``, ``training_dtype``,
        ``wire_dtype`` — each a dtype name like ``"float32"``.
        """
        from repro.utils.dtypes import DtypePolicy

        return DtypePolicy.from_config(self)

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.values)

    def to_json(self) -> str:
        return json.dumps(self.values, sort_keys=True)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "Config":
        return cls(dict(mapping))

    @classmethod
    def from_json(cls, text: str) -> "Config":
        return cls(json.loads(text))
