"""Global dtype policy: float64 training with an optional float32 fast path.

The nn stack stores master weights in float64 (gradcheck-grade precision for
training), but inference does not need that: casting activations and the
active weight blocks to float32 roughly halves memory traffic and doubles
BLAS throughput on the GEMMs every layer lowers to.

A :class:`DtypePolicy` names three dtypes:

* ``training`` — compute dtype of train-mode forward/backward (float64);
* ``inference`` — compute dtype of eval-mode forward passes;
* ``wire`` — dtype arrays take on the transport between devices.

One process-global policy is consulted by the layers
(:mod:`repro.nn.layers`, :mod:`repro.slimmable`), the stateless partitioned
kernels (:mod:`repro.distributed.partitioned`), and the wire codec helpers
(:mod:`repro.comm.wire`).  The default policy reproduces the historical
behaviour exactly: float64 everywhere, float32 on the wire.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Optional

import numpy as np

_COMPUTE_DTYPES = ("float32", "float64")
_WIRE_DTYPES = ("float32", "float64")


@dataclass(frozen=True)
class DtypePolicy:
    """Named dtypes for training compute, inference compute, and the wire."""

    inference: str = "float64"
    training: str = "float64"
    wire: str = "float32"

    def __post_init__(self) -> None:
        if self.inference not in _COMPUTE_DTYPES:
            raise ValueError(f"inference dtype must be one of {_COMPUTE_DTYPES}")
        if self.training not in _COMPUTE_DTYPES:
            raise ValueError(f"training dtype must be one of {_COMPUTE_DTYPES}")
        if self.wire not in _WIRE_DTYPES:
            raise ValueError(f"wire dtype must be one of {_WIRE_DTYPES}")

    # -- numpy views ---------------------------------------------------------

    @property
    def inference_dtype(self) -> np.dtype:
        return np.dtype(self.inference)

    @property
    def training_dtype(self) -> np.dtype:
        return np.dtype(self.training)

    @property
    def wire_dtype(self) -> np.dtype:
        return np.dtype(self.wire)

    def compute_dtype(self, training: bool) -> np.dtype:
        return self.training_dtype if training else self.inference_dtype

    # -- construction ---------------------------------------------------------

    @classmethod
    def fast_inference(cls) -> "DtypePolicy":
        """The float32 inference fast path (training stays float64)."""
        return cls(inference="float32")

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "DtypePolicy":
        """Build a policy from config keys ``{inference,training,wire}_dtype``.

        Missing keys fall back to the defaults, so an empty mapping yields
        the historical float64 behaviour.
        """
        get = config.get
        return cls(
            inference=get("inference_dtype", cls.inference),
            training=get("training_dtype", cls.training),
            wire=get("wire_dtype", cls.wire),
        )


_DEFAULT_POLICY = DtypePolicy()
# The process-wide policy (what set_dtype_policy installs): visible from every
# thread, including in-process worker/server threads.  The thread-local holds
# only scoped `dtype_policy(...)` overrides, so concurrent tests stay isolated.
_GLOBAL_POLICY = _DEFAULT_POLICY
_STATE = threading.local()


def get_dtype_policy() -> DtypePolicy:
    """The active policy: this thread's scoped override, else the process global."""
    return getattr(_STATE, "policy", None) or _GLOBAL_POLICY


def set_dtype_policy(policy: Optional[DtypePolicy]) -> DtypePolicy:
    """Install ``policy`` process-wide (None restores the default); returns the old one.

    Worker threads spawned before or after the call all observe the new
    policy (unless they are inside a scoped :func:`dtype_policy` block).
    """
    global _GLOBAL_POLICY
    old = _GLOBAL_POLICY
    _GLOBAL_POLICY = policy or _DEFAULT_POLICY
    return old


@contextmanager
def dtype_policy(policy: Optional[DtypePolicy] = None, **kwargs: str) -> Iterator[DtypePolicy]:
    """Temporarily install a policy for the current thread::

        with dtype_policy(inference="float32"):
            logits = view(x)   # float32 forward pass

    The override is thread-scoped (it shadows the process-wide policy only
    here), so concurrent threads — including in-process worker servers —
    are unaffected; use :func:`set_dtype_policy` for a process-wide switch.
    """
    if policy is None:
        policy = DtypePolicy(**kwargs)
    elif kwargs:
        raise TypeError("pass either a policy object or keyword overrides, not both")
    previous = getattr(_STATE, "policy", None)
    _STATE.policy = policy
    try:
        yield policy
    finally:
        _STATE.policy = previous


def compute_dtype(training: bool = False) -> np.dtype:
    """Active compute dtype for the given mode."""
    return get_dtype_policy().compute_dtype(training)


def as_compute(x: np.ndarray, training: bool = False) -> np.ndarray:
    """Cast ``x`` to the active compute dtype (no copy when already there)."""
    return np.asarray(x, dtype=compute_dtype(training))


def resolve_dtype_policy(name: str) -> DtypePolicy:
    """Map a CLI-style name to a policy: ``float64`` | ``float32``."""
    if name == "float64":
        return DtypePolicy()
    if name == "float32":
        return DtypePolicy.fast_inference()
    raise ValueError(f"unknown dtype policy {name!r} (expected float32 or float64)")
