"""Shared utilities: deterministic RNG plumbing, configuration, logging.

Everything stochastic in :mod:`repro` takes an explicit
:class:`numpy.random.Generator`; :func:`repro.utils.rng.make_rng` is the one
place generators are created so experiments are reproducible per seed.
"""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.config import Config
from repro.utils.logging import get_logger

__all__ = ["make_rng", "spawn_rngs", "Config", "get_logger"]
