"""Shared utilities: deterministic RNG plumbing, configuration, logging.

Everything stochastic in :mod:`repro` takes an explicit
:class:`numpy.random.Generator`; :func:`repro.utils.rng.make_rng` is the one
place generators are created so experiments are reproducible per seed.
"""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.config import Config
from repro.utils.dtypes import (
    DtypePolicy,
    dtype_policy,
    get_dtype_policy,
    resolve_dtype_policy,
    set_dtype_policy,
)
from repro.utils.logging import get_logger

__all__ = [
    "make_rng",
    "spawn_rngs",
    "Config",
    "get_logger",
    "DtypePolicy",
    "dtype_policy",
    "get_dtype_policy",
    "set_dtype_policy",
    "resolve_dtype_policy",
]
