"""Thin logging facade.

Keeps a single namespaced logger hierarchy (``repro.*``) and a default
formatter that is quiet under test but informative in examples.
"""

from __future__ import annotations

import logging
import sys

_CONFIGURED = False


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure(level: int = logging.INFO, stream=None) -> None:
    """Install a basic handler on the ``repro`` root logger (idempotent)."""
    global _CONFIGURED
    root = logging.getLogger("repro")
    if _CONFIGURED:
        root.setLevel(level)
        return
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s", "%H:%M:%S"))
    root.addHandler(handler)
    root.setLevel(level)
    _CONFIGURED = True
