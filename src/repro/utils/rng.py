"""Deterministic random-number plumbing.

The repository-wide convention is that no module ever touches global numpy
random state.  Components receive a :class:`numpy.random.Generator` and, when
they need independent child streams (e.g. one per device, one per data split),
derive them with :func:`spawn_rngs` so that adding a consumer never perturbs
the stream seen by another.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from any seed-like value.

    Accepts ``None`` (non-deterministic), an ``int`` seed, an existing
    ``Generator`` (returned unchanged) or a ``SeedSequence``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(rng: np.random.Generator, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Child streams are derived through ``SeedSequence.spawn`` semantics by
    drawing fresh 128-bit seeds from ``rng``, so the parent stream advances by
    exactly ``count`` draws regardless of how children are used afterwards.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: int, *labels: Union[str, int]) -> int:
    """Derive a stable 63-bit seed from a base seed and a label path.

    Used when a component is configured by value (e.g. across process
    boundaries) and cannot share a live ``Generator`` object.
    """
    ss = np.random.SeedSequence([seed & 0x7FFFFFFFFFFFFFFF] + [_label_to_int(x) for x in labels])
    return int(ss.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)


def _label_to_int(label: Union[str, int]) -> int:
    if isinstance(label, int):
        return label & 0xFFFFFFFF
    acc = 0
    for ch in str(label):
        acc = (acc * 131 + ord(ch)) & 0xFFFFFFFF
    return acc


def check_rng(rng: Optional[np.random.Generator], where: str) -> np.random.Generator:
    """Validate that ``rng`` is a Generator, with a helpful error message."""
    if not isinstance(rng, np.random.Generator):
        raise TypeError(f"{where} requires a numpy.random.Generator, got {type(rng).__name__}")
    return rng
