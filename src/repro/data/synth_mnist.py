"""Synthetic MNIST-like dataset.

The paper evaluates on MNIST; this environment has no network access, so we
generate an MNIST-shaped stand-in: 28x28 grayscale digit images rendered
from glyph bitmaps with randomized elastic/affine/blur/noise distortion.
A small CNN reaches the same high-90s accuracy band as on MNIST, which is
what the paper's accuracy comparisons need (relations between model
variants, not absolute MNIST scores).  See DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.glyphs import NUM_CLASSES, all_glyphs, upsample
from repro.data.transforms import Compose, default_augmentation
from repro.utils.rng import check_rng

IMAGE_SIZE = 28
_GLYPH_UPSAMPLE = 3  # 7x5 glyph -> 21x15 canvas artwork


@dataclass(frozen=True)
class SynthMNISTConfig:
    """Generation parameters for one dataset draw."""

    num_train: int = 8000
    num_test: int = 2000
    seed: int = 0
    image_size: int = IMAGE_SIZE

    def __post_init__(self) -> None:
        if self.num_train <= 0 or self.num_test <= 0:
            raise ValueError("dataset sizes must be positive")
        if self.image_size < 24:
            raise ValueError("image_size must be at least 24 to fit the glyphs")


def render_digit(
    digit: int,
    rng: np.random.Generator,
    transform: Optional[Compose] = None,
    image_size: int = IMAGE_SIZE,
) -> np.ndarray:
    """Render one distorted digit image in [0, 1] of shape (image_size, image_size)."""
    check_rng(rng, "render_digit")
    glyphs = all_glyphs()
    art = upsample(glyphs[digit], _GLYPH_UPSAMPLE)
    canvas = np.zeros((image_size, image_size))
    top = (image_size - art.shape[0]) // 2
    left = (image_size - art.shape[1]) // 2
    canvas[top : top + art.shape[0], left : left + art.shape[1]] = art
    if transform is None:
        transform = default_augmentation()
    return np.clip(transform(canvas, rng), 0.0, 1.0)


def generate_images(
    num: int,
    rng: np.random.Generator,
    transform: Optional[Compose] = None,
    image_size: int = IMAGE_SIZE,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``num`` images with balanced class labels.

    Returns ``(images, labels)`` with images ``(num, 1, S, S)``.
    """
    check_rng(rng, "generate_images")
    if num <= 0:
        raise ValueError("num must be positive")
    if transform is None:
        transform = default_augmentation()
    labels = rng.integers(0, NUM_CLASSES, size=num)
    images = np.empty((num, 1, image_size, image_size))
    for i, digit in enumerate(labels):
        images[i, 0] = render_digit(int(digit), rng, transform, image_size)
    return images, labels.astype(np.int64)


def load_synth_mnist(
    config: Optional[SynthMNISTConfig] = None,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Generate the train/test pair for a config (deterministic per seed)."""
    cfg = config or SynthMNISTConfig()
    train_rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, 0]))
    test_rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, 1]))
    transform = default_augmentation()
    train = ArrayDataset(*generate_images(cfg.num_train, train_rng, transform, cfg.image_size))
    test = ArrayDataset(*generate_images(cfg.num_test, test_rng, transform, cfg.image_size))
    return train, test
