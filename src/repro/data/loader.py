"""Mini-batch iteration."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.utils.rng import check_rng


class DataLoader:
    """Iterates a dataset in mini-batches, optionally reshuffling per epoch."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int,
        *,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if shuffle:
            check_rng(rng, "DataLoader(shuffle=True)")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            if len(idx) == 0:
                break
            yield self.dataset[idx]
