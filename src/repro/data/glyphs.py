"""Digit glyph bitmaps — the seed artwork for the synthetic MNIST dataset.

Each digit is a 7x5 binary matrix (classic seven-row font).  The synthetic
dataset (:mod:`repro.data.synth_mnist`) upsamples these, applies random
affine distortion, stroke-thickness variation, blur and noise to produce
28x28 grayscale images that play the role of MNIST in the paper's
evaluation (see DESIGN.md §2 for the substitution rationale).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

_GLYPH_ROWS: Dict[int, tuple] = {
    0: (
        "01110",
        "10001",
        "10011",
        "10101",
        "11001",
        "10001",
        "01110",
    ),
    1: (
        "00100",
        "01100",
        "00100",
        "00100",
        "00100",
        "00100",
        "01110",
    ),
    2: (
        "01110",
        "10001",
        "00001",
        "00010",
        "00100",
        "01000",
        "11111",
    ),
    3: (
        "11111",
        "00010",
        "00100",
        "00010",
        "00001",
        "10001",
        "01110",
    ),
    4: (
        "00010",
        "00110",
        "01010",
        "10010",
        "11111",
        "00010",
        "00010",
    ),
    5: (
        "11111",
        "10000",
        "11110",
        "00001",
        "00001",
        "10001",
        "01110",
    ),
    6: (
        "00110",
        "01000",
        "10000",
        "11110",
        "10001",
        "10001",
        "01110",
    ),
    7: (
        "11111",
        "00001",
        "00010",
        "00100",
        "01000",
        "01000",
        "01000",
    ),
    8: (
        "01110",
        "10001",
        "10001",
        "01110",
        "10001",
        "10001",
        "01110",
    ),
    9: (
        "01110",
        "10001",
        "10001",
        "01111",
        "00001",
        "00010",
        "01100",
    ),
}

GLYPH_HEIGHT = 7
GLYPH_WIDTH = 5
NUM_CLASSES = 10


def glyph(digit: int) -> np.ndarray:
    """Binary ``(7, 5)`` float array for ``digit`` in 0..9."""
    if digit not in _GLYPH_ROWS:
        raise ValueError(f"digit must be in 0..9, got {digit}")
    rows = _GLYPH_ROWS[digit]
    return np.array([[float(c) for c in row] for row in rows])


def all_glyphs() -> np.ndarray:
    """Stacked ``(10, 7, 5)`` glyph array, index = digit."""
    return np.stack([glyph(d) for d in range(NUM_CLASSES)])


def upsample(bitmap: np.ndarray, factor: int) -> np.ndarray:
    """Nearest-neighbour upsample by an integer factor."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    return np.kron(bitmap, np.ones((factor, factor)))
