"""Datasets and loaders (synthetic MNIST substitute — see DESIGN.md §2)."""

from repro.data.dataset import ArrayDataset
from repro.data.io import load_dataset, load_synth_mnist_cached, save_dataset
from repro.data.loader import DataLoader
from repro.data.synth_mnist import (
    IMAGE_SIZE,
    SynthMNISTConfig,
    generate_images,
    load_synth_mnist,
    render_digit,
)
from repro.data.transforms import (
    AdditiveNoise,
    Compose,
    ContrastJitter,
    ElasticDistortion,
    GaussianBlur,
    RandomAffine,
    default_augmentation,
)

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "save_dataset",
    "load_dataset",
    "load_synth_mnist_cached",
    "SynthMNISTConfig",
    "load_synth_mnist",
    "generate_images",
    "render_digit",
    "IMAGE_SIZE",
    "Compose",
    "RandomAffine",
    "GaussianBlur",
    "AdditiveNoise",
    "ElasticDistortion",
    "ContrastJitter",
    "default_augmentation",
]
