"""Image transforms used by the synthetic dataset generator.

All transforms are callables ``(image, rng) -> image`` over 2-D float
arrays in [0, 1]; :class:`Compose` chains them.  Random parameters are drawn
from the supplied generator only (repo determinism rule).
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np
from scipy import ndimage


class Compose:
    """Apply transforms in order."""

    def __init__(self, transforms: Sequence[Callable]) -> None:
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for t in self.transforms:
            image = t(image, rng)
        return image


class RandomAffine:
    """Random rotation / scale / translation around the image centre."""

    def __init__(
        self,
        max_rotation_deg: float = 15.0,
        scale_range: Tuple[float, float] = (0.85, 1.15),
        max_shift: float = 2.5,
    ) -> None:
        if max_rotation_deg < 0 or max_shift < 0:
            raise ValueError("rotation and shift bounds must be non-negative")
        lo, hi = scale_range
        if not 0 < lo <= hi:
            raise ValueError(f"invalid scale range {scale_range}")
        self.max_rotation_deg = max_rotation_deg
        self.scale_range = scale_range
        self.max_shift = max_shift

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        angle = np.deg2rad(rng.uniform(-self.max_rotation_deg, self.max_rotation_deg))
        scale = rng.uniform(*self.scale_range)
        shift = rng.uniform(-self.max_shift, self.max_shift, size=2)

        cos, sin = np.cos(angle), np.sin(angle)
        # Inverse map (output -> input) for ndimage.affine_transform.
        matrix = np.array([[cos, -sin], [sin, cos]]) / scale
        centre = (np.array(image.shape) - 1) / 2.0
        offset = centre - matrix @ (centre + shift)
        return ndimage.affine_transform(image, matrix, offset=offset, order=1, mode="constant")


class GaussianBlur:
    """Gaussian smoothing with per-image random sigma (pen-stroke softness)."""

    def __init__(self, sigma_range: Tuple[float, float] = (0.4, 0.9)) -> None:
        lo, hi = sigma_range
        if not 0 <= lo <= hi:
            raise ValueError(f"invalid sigma range {sigma_range}")
        self.sigma_range = sigma_range

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        sigma = rng.uniform(*self.sigma_range)
        if sigma == 0:
            return image
        return ndimage.gaussian_filter(image, sigma=sigma)


class AdditiveNoise:
    """Clipped additive Gaussian pixel noise."""

    def __init__(self, std: float = 0.05) -> None:
        if std < 0:
            raise ValueError("std must be non-negative")
        self.std = std

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.std == 0:
            return image
        return np.clip(image + rng.normal(0.0, self.std, size=image.shape), 0.0, 1.0)


class ElasticDistortion:
    """Elastic deformation (Simard et al., 2003) — handwriting wobble."""

    def __init__(self, alpha: float = 4.0, sigma: float = 3.0) -> None:
        if alpha < 0 or sigma <= 0:
            raise ValueError("alpha must be >=0 and sigma > 0")
        self.alpha = alpha
        self.sigma = sigma

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.alpha == 0:
            return image
        dx = ndimage.gaussian_filter(rng.uniform(-1, 1, image.shape), self.sigma) * self.alpha
        dy = ndimage.gaussian_filter(rng.uniform(-1, 1, image.shape), self.sigma) * self.alpha
        ys, xs = np.meshgrid(np.arange(image.shape[0]), np.arange(image.shape[1]), indexing="ij")
        coords = np.stack([ys + dy, xs + dx])
        return ndimage.map_coordinates(image, coords, order=1, mode="constant")


class ContrastJitter:
    """Random gamma-style intensity remapping."""

    def __init__(self, gamma_range: Tuple[float, float] = (0.8, 1.3)) -> None:
        lo, hi = gamma_range
        if not 0 < lo <= hi:
            raise ValueError(f"invalid gamma range {gamma_range}")
        self.gamma_range = gamma_range

    def __call__(self, image: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        gamma = rng.uniform(*self.gamma_range)
        return np.clip(image, 0.0, 1.0) ** gamma


def default_augmentation() -> Compose:
    """The augmentation pipeline used by the stock synthetic MNIST recipe."""
    return Compose(
        [
            ElasticDistortion(alpha=3.0, sigma=3.0),
            RandomAffine(max_rotation_deg=14.0, scale_range=(0.85, 1.15), max_shift=2.5),
            GaussianBlur(sigma_range=(0.4, 0.9)),
            ContrastJitter(gamma_range=(0.85, 1.25)),
            AdditiveNoise(std=0.04),
        ]
    )
