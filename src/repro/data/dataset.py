"""Dataset abstractions."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import check_rng


class ArrayDataset:
    """In-memory dataset of ``(images, labels)`` arrays.

    Images are ``(N, C, H, W)`` float64; labels are ``(N,)`` int64.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        if images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W), got {images.shape}")
        if labels.ndim != 1 or labels.shape[0] != images.shape[0]:
            raise ValueError(
                f"labels shape {labels.shape} incompatible with {images.shape[0]} images"
            )
        self.images = np.ascontiguousarray(images, dtype=np.float64)
        self.labels = np.ascontiguousarray(labels, dtype=np.int64)

    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self) else 0

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        return ArrayDataset(self.images[indices], self.labels[indices])

    def split(
        self, fraction: float, rng: np.random.Generator
    ) -> Tuple["ArrayDataset", "ArrayDataset"]:
        """Shuffle and split into ``(first, second)`` with ``fraction`` in first."""
        check_rng(rng, "ArrayDataset.split")
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        order = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        return self.subset(order[:cut]), self.subset(order[cut:])

    def class_counts(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.num_classes)
