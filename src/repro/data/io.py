"""Dataset persistence and caching.

Synthetic MNIST generation costs a few seconds per run; experiment scripts
that iterate on training parameters cache the generated arrays as npz
archives keyed by the generation config, so a config is rendered once per
machine.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.data.synth_mnist import SynthMNISTConfig, load_synth_mnist


def save_dataset(path: str, dataset: ArrayDataset) -> None:
    """Write a dataset to an npz archive (no pickle)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, images=dataset.images, labels=dataset.labels)


def load_dataset(path: str) -> ArrayDataset:
    with np.load(path, allow_pickle=False) as archive:
        return ArrayDataset(archive["images"].copy(), archive["labels"].copy())


def _cache_name(config: SynthMNISTConfig, split: str) -> str:
    return (
        f"synth_mnist-{split}-n{config.num_train}x{config.num_test}"
        f"-s{config.seed}-i{config.image_size}.npz"
    )


def load_synth_mnist_cached(
    config: Optional[SynthMNISTConfig] = None,
    cache_dir: Optional[str] = None,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Like :func:`load_synth_mnist`, but cached on disk per config.

    ``cache_dir`` defaults to ``~/.cache/repro-fluid-dydnn``; set it
    explicitly in tests.
    """
    cfg = config or SynthMNISTConfig()
    cache_dir = cache_dir or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-fluid-dydnn"
    )
    train_path = os.path.join(cache_dir, _cache_name(cfg, "train"))
    test_path = os.path.join(cache_dir, _cache_name(cfg, "test"))
    if os.path.exists(train_path) and os.path.exists(test_path):
        return load_dataset(train_path), load_dataset(test_path)
    train, test = load_synth_mnist(cfg)
    save_dataset(train_path, train)
    save_dataset(test_path, test)
    return train, test
