"""Command-line interface.

Subcommands::

    python -m repro train --family fluid --out model.npz
    python -m repro evaluate --family fluid --weights model.npz
    python -m repro fig2 [--fast]
    python -m repro simulate --family fluid --fail worker:10 --recover worker:25
    python -m repro serve --family fluid --subnet lower50 --requests 256
    python -m repro serve --sla 40 --replicas 2 --trace out.jsonl
    python -m repro replay --scenario bursts --mode sim
    python -m repro replay --trace out.jsonl --mode live
    python -m repro calibration

All commands are deterministic per ``--seed`` (``serve`` timings vary, its
outputs do not).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.comm import CommLatencyModel
from repro.data import SynthMNISTConfig, load_synth_mnist
from repro.device import (
    FailureEvent,
    FailureSchedule,
    jetson_nx_master,
    jetson_nx_worker,
)
from repro.distributed import SystemThroughputModel
from repro.experiments import (
    calibration_points,
    format_fig2_table,
    format_shape_checks,
    run_fig2,
    shape_checks,
)
from repro.models import build_model
from repro.nn.checkpoint import load_state, save_state
from repro.nn.functional import CONV_BACKENDS
from repro.runtime import AdaptationPolicy, SystemController
from repro.slimmable import SlimmableConvNet, paper_width_spec
from repro.training import RecipeConfig, TrainConfig, train_family
from repro.utils import make_rng, resolve_dtype_policy, set_dtype_policy


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    """The shared scheduler-config flags (serve --sla mode and replay).

    Every flag defaults to ``None`` — "not given" — so
    :func:`config_from_args` can layer them as overrides on top of
    ``--config FILE`` on top of the subcommand's defaults.  A flag with
    an argparse default would silently override the config file instead.
    """
    parser.add_argument(
        "--config", default=None, metavar="FILE",
        help="scheduler config to start from: a repro-tuned-config artifact "
        "(replay --tune output) or a bare SchedulerConfig mapping JSON; "
        "explicit flags below override its keys",
    )
    parser.add_argument(
        "--replicas", type=int, default=None,
        help="replica pool size (shared weights, zero copies; default 2)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=None,
        help="micro-batch row ceiling per (replica, width) queue",
    )
    parser.add_argument(
        "--max-delay-ms", type=float, default=None,
        help="micro-batch flush delay in milliseconds",
    )
    parser.add_argument(
        "--conv-backend", choices=CONV_BACKENDS, default=None,
        help="convolution lowering for compiled plans: im2col (bitwise-exact "
        "default), im2col-blocked (bitwise, cache-blocked gather), or "
        "shifted-gemm (fastest at wide widths; allclose, not bitwise)",
    )
    parser.add_argument(
        "--rows-ladder", default=None, metavar="R1,R2,...",
        help="comma-separated batch-row rungs (e.g. 1,4,16): compile a plan "
        "ladder per width so small flushes run on small arenas; the top rung "
        "is always the batch ceiling",
    )
    parser.add_argument(
        "--replica-backend", choices=("thread", "process"), default=None,
        help="what a replica is: thread (shared interpreter) or process "
        "(forked workers over shared-memory weights, GIL-free)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--dtype-policy",
        choices=("float64", "float32"),
        default="float64",
        help="numeric policy: float64 reproduces the paper exactly; "
        "float32 is the inference fast path (training stays float64)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train one model family")
    train.add_argument("--family", choices=("static", "dynamic", "fluid"), required=True)
    train.add_argument("--out", required=True, help="npz checkpoint output path")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--train-size", type=int, default=4000)
    train.add_argument("--epochs", type=int, default=1)
    train.add_argument("--niters", type=int, default=2)
    train.add_argument("--lr", type=float, default=0.05)

    evaluate = sub.add_parser("evaluate", help="evaluate a checkpoint's sub-networks")
    evaluate.add_argument("--family", choices=("static", "dynamic", "fluid"), required=True)
    evaluate.add_argument("--weights", required=True)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--test-size", type=int, default=1000)

    fig2 = sub.add_parser("fig2", help="regenerate the paper's Fig. 2")
    fig2.add_argument("--fast", action="store_true")
    fig2.add_argument("--seed", type=int, default=7)

    simulate = sub.add_parser("simulate", help="replay a failure timeline")
    simulate.add_argument("--family", choices=("static", "dynamic", "fluid"), required=True)
    simulate.add_argument(
        "--fail", action="append", default=[], metavar="DEVICE:T",
        help="crash DEVICE at time T seconds (repeatable)",
    )
    simulate.add_argument(
        "--recover", action="append", default=[], metavar="DEVICE:T",
        help="recover DEVICE at time T seconds (repeatable)",
    )
    simulate.add_argument("--horizon", type=float, default=60.0)
    simulate.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="serve synthetic traffic: serial vs concurrent vs micro-batched, "
        "or (--sla) the SLA-aware scheduler vs a fixed-widest baseline"
    )
    serve.add_argument("--family", choices=("static", "dynamic", "fluid"), default="fluid")
    serve.add_argument("--subnet", default=None, help="sub-network name (default: full width)")
    serve.add_argument("--weights", default=None, help="optional npz checkpoint to serve")
    serve.add_argument("--requests", type=int, default=256)
    serve.add_argument("--concurrency", type=int, default=4)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--sla", type=float, default=None, metavar="MS",
        help="per-request deadline in ms: drive the overload+failure trace through "
        "the SLA scheduler (admission, width selection, hedged routing) vs a "
        "fixed-widest baseline",
    )
    _add_config_flags(serve)
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="pool size for --replica-backend process (alias for --replicas)",
    )
    serve.add_argument(
        "--stats", action="store_true",
        help="print per-worker telemetry (rows, repacks, rows/s) after the run",
    )
    serve.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record every scheduler-run request lifecycle (admission, width, "
        "batch, hedge, resolve spans) to this trace artifact; requires --sla",
    )

    replay = sub.add_parser(
        "replay",
        help="replay a scenario-zoo or recorded trace through the SLA "
        "scheduler: sim mode is deterministic virtual time, live mode "
        "drives a real frontend on the wall clock",
    )
    replay.add_argument("--scenario", default=None, help="scenario zoo name (see --list)")
    replay.add_argument(
        "--trace", default=None, metavar="FILE",
        help="trace artifact to replay (generated or recorded JSONL)",
    )
    replay.add_argument("--mode", choices=("sim", "live"), default="sim")
    replay.add_argument("--family", choices=("static", "dynamic", "fluid"), default="fluid")
    replay.add_argument("--weights", default=None, help="optional npz checkpoint to serve")
    _add_config_flags(replay)
    replay.add_argument(
        "--seed", type=int, default=0,
        help="tracer sampling seed (live mode) and tuner seed (--tune)",
    )
    replay.add_argument(
        "--sampling", type=float, default=1.0,
        help="fraction of requests traced in live mode (deterministic per request id)",
    )
    replay.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the replay's own recorded artifact here (replayable again)",
    )
    replay.add_argument(
        "--faults", nargs="?", const="auto", default=None, metavar="FILE",
        help="inject a fault plan during the replay: with no value, use the "
        "plan attached to the scenario/artifact (faulty scenarios and "
        "recorded incidents carry one); with FILE, load a serialised "
        "FaultPlan JSON.  Live mode also enables supervised respawn and "
        "bounded retries",
    )
    replay.add_argument(
        "--list", action="store_true", help="list the scenario zoo and exit",
    )
    replay.add_argument(
        "--tune", action="store_true",
        help="offline autotune instead of replaying: search SchedulerConfig "
        "space against the virtual-time simulator on this trace (with "
        "--faults: scored under the attached fault plan — best config "
        "under chaos) and write a repro-tuned-config artifact that "
        "'serve --config FILE' loads directly.  The scheduler flags above "
        "are ignored; the tuner searches its own space",
    )
    replay.add_argument(
        "--tune-out", default=None, metavar="FILE",
        help="tuned-config artifact path (default tuned_<trace>.json)",
    )
    replay.add_argument(
        "--tune-workers", type=int, default=None, metavar="N",
        help="process-pool width for candidate simulations (default: cores, "
        "capped at 4; results are identical at any width)",
    )

    dist = sub.add_parser(
        "dist",
        help="drive the distributed engine (solo/HT/HA) eager vs compiled and "
        "report wall-clock, ledger, and per-round exchange bytes",
    )
    dist.add_argument("--mode", choices=("ha", "ht", "solo"), default="ha")
    dist.add_argument("--subnet", default=None, help="combined sub-network for HA (default lower100)")
    dist.add_argument("--batch", type=int, default=16)
    dist.add_argument("--batches", type=int, default=8, help="timed batches after one warmup")
    dist.add_argument("--split", type=int, default=None, help="partition split (default: family split)")
    dist.add_argument("--seed", type=int, default=0)
    dist.add_argument(
        "--tcp", action="store_true",
        help="drive a subprocess worker over real TCP instead of in-process endpoints",
    )
    dist.add_argument(
        "--compiled", dest="compiled", action="store_true", default=None,
        help="run only the compiled path (default: both, with a parity check)",
    )
    dist.add_argument(
        "--eager", dest="compiled", action="store_false",
        help="run only the eager path",
    )

    sub.add_parser("calibration", help="show emulated-testbed calibration vs paper")
    return parser


def _parse_events(fails: List[str], recovers: List[str]) -> FailureSchedule:
    events = []
    for kind, entries in (("crash", fails), ("recover", recovers)):
        for entry in entries:
            try:
                device, t = entry.split(":")
                events.append(FailureEvent(float(t), device, kind))
            except ValueError as exc:
                raise SystemExit(f"bad --{kind} spec {entry!r} (expected DEVICE:T)") from exc
    return FailureSchedule(events)


def cmd_train(args) -> int:
    data = SynthMNISTConfig(num_train=args.train_size, num_test=500, seed=args.seed)
    train_set, test_set = load_synth_mnist(data)
    recipe = RecipeConfig(
        stage=TrainConfig(epochs=args.epochs, lr=args.lr), niters=args.niters
    )
    started = time.time()
    model, history = train_family(
        args.family, train_set, rng=make_rng(args.seed), config=recipe
    )
    save_state(args.out, model.state_dict())
    print(f"trained {args.family} in {time.time() - started:.0f}s "
          f"({len(history)} stage-epochs) -> {args.out}")
    for name, acc in model.evaluate_all(test_set).items():
        print(f"  {name:10s} {acc:.4f}")
    return 0


def cmd_evaluate(args) -> int:
    data = SynthMNISTConfig(num_train=10, num_test=args.test_size, seed=args.seed)
    _, test_set = load_synth_mnist(data)
    model = build_model(args.family, rng=make_rng(args.seed))
    model.load_state_dict(load_state(args.weights))
    print(f"{args.family} checkpoint {args.weights}:")
    for name, acc in model.evaluate_all(test_set).items():
        certified = "standalone" if model.is_standalone_certified(name) else "combined-only"
        print(f"  {name:10s} {acc:.4f}  ({certified})")
    return 0


def cmd_fig2(args) -> int:
    if args.fast:
        data = SynthMNISTConfig(num_train=2000, num_test=500, seed=0)
        recipe = RecipeConfig(stage=TrainConfig(epochs=1, lr=0.05), niters=2)
    else:
        data = SynthMNISTConfig(num_train=6000, num_test=1500, seed=0)
        recipe = RecipeConfig(stage=TrainConfig(epochs=2, lr=0.05), niters=3)
    train_set, test_set = load_synth_mnist(data)
    models = {}
    for family in ("static", "dynamic", "fluid"):
        started = time.time()
        models[family], _ = train_family(
            family, train_set, rng=make_rng(args.seed), config=recipe
        )
        print(f"trained {family} in {time.time() - started:.0f}s")
    result = run_fig2(models, test_set)
    print()
    print(format_fig2_table(result))
    print()
    print(format_shape_checks(shape_checks(result)))
    return 0


def cmd_simulate(args) -> int:
    schedule = _parse_events(args.fail, args.recover)
    model = build_model(args.family, rng=make_rng(args.seed))
    tm = SystemThroughputModel(
        model.net, jetson_nx_master(), jetson_nx_worker(), CommLatencyModel()
    )
    controller = SystemController(AdaptationPolicy(model, tm), tm)
    timeline = controller.simulate(schedule, horizon_s=args.horizon)
    for t in timeline.transitions:
        alive = ",".join(sorted(t.alive)) or "none"
        print(
            f"t={t.time_s:6.1f}s alive=[{alive:13s}] {t.plan.describe():50s} "
            f"{t.throughput.throughput_ips:5.1f} img/s"
        )
    print(f"downtime: {timeline.downtime():.1f}s of {args.horizon:.1f}s")
    return 0


def _parse_rows_ladder(spec: Optional[str]):
    """``"1,4,16"`` -> ``(1, 4, 16)``; None passes through."""
    if spec is None:
        return None
    try:
        rungs = tuple(int(r) for r in spec.split(","))
    except ValueError as exc:
        raise SystemExit(
            f"bad --rows-ladder {spec!r} (expected comma-separated ints)"
        ) from exc
    if not rungs or any(r <= 0 for r in rungs):
        raise SystemExit("--rows-ladder rungs must be positive")
    return rungs


def config_from_args(args, defaults=None):
    """Build the one :class:`SchedulerConfig` both subcommands serve with.

    Three layers, lowest precedence first:

    1. ``defaults`` — the subcommand's baseline mapping (e.g. serve's
       historical ``max_batch=32``),
    2. ``--config FILE`` — a tuned-config artifact or bare mapping,
    3. explicit flags — only flags actually given override; every shared
       flag parses with ``default=None`` so "absent" is detectable.

    The merged mapping goes through ``SchedulerConfig.from_mapping``, the
    single validated path — there is no loose-dict construction here.
    """
    from repro.scheduler.frontend import SchedulerConfig

    mapping = dict(defaults or {})
    if getattr(args, "config", None):
        from repro.tuning import load_config_mapping

        try:
            file_mapping = load_config_mapping(args.config)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"--config: {exc}") from exc
        mapping.update(file_mapping)
    if getattr(args, "replicas", None) is not None:
        mapping["replicas"] = args.replicas
    if getattr(args, "workers", None) is not None:
        mapping["replicas"] = args.workers
    if getattr(args, "max_batch", None) is not None:
        mapping["max_batch"] = args.max_batch
    if getattr(args, "max_delay_ms", None) is not None:
        mapping["max_delay_s"] = args.max_delay_ms / 1000.0
    if getattr(args, "conv_backend", None) is not None:
        mapping["conv_backend"] = args.conv_backend
        # An explicit backend flag overrides a config file's per-rung
        # assignment too — otherwise the flag would silently only apply
        # to rungs the file left unmapped.
        mapping.pop("conv_backend_per_rung", None)
    rows_ladder = getattr(args, "rows_ladder", None)
    if rows_ladder is not None:
        if isinstance(rows_ladder, str):
            rows_ladder = _parse_rows_ladder(rows_ladder)
        mapping["rows_ladder"] = list(rows_ladder)
    if getattr(args, "replica_backend", None) is not None:
        mapping["replica_backend"] = args.replica_backend
    if getattr(args, "sla", None) is not None:
        mapping["sla.deadline_s"] = args.sla / 1000.0
    try:
        return SchedulerConfig.from_mapping(mapping)
    except ValueError as exc:
        raise SystemExit(f"bad scheduler config: {exc}") from exc


def cmd_serve(args) -> int:
    from repro.serving_bench import run_serving_comparison

    # Validate argparse-only facts before paying for a model build.
    # --config implies the scheduled frontend, same as --sla: the config
    # wire format *is* a scheduler config.
    scheduled = args.sla is not None or args.config is not None
    if args.sla is not None and args.sla <= 0:
        raise SystemExit("--sla must be a positive deadline in milliseconds")
    if args.replicas is not None and args.replicas <= 0:
        raise SystemExit("--replicas must be positive")
    if not scheduled and (
        args.conv_backend is not None or args.rows_ladder is not None
    ):
        # Only the scheduled frontend compiles plans; silently ignoring
        # these would report default-backend numbers under another label.
        raise SystemExit(
            "--conv-backend/--rows-ladder require --sla or --config "
            "(compiled-plan serving)"
        )
    if not scheduled and (
        args.replica_backend is not None or args.workers is not None or args.stats
    ):
        raise SystemExit(
            "--replica-backend/--workers/--stats require --sla or --config "
            "(scheduled serving)"
        )
    if not scheduled and args.trace is not None:
        raise SystemExit(
            "--trace requires --sla or --config (tracing attaches to the "
            "scheduler frontend)"
        )
    if args.workers is not None and args.workers <= 0:
        raise SystemExit("--workers must be positive")
    model = build_model(args.family, rng=make_rng(args.seed))
    if args.weights:
        model.load_state_dict(load_state(args.weights))
    if scheduled:
        return _serve_scheduled(model, args)
    subnet = args.subnet or model.width_spec.full().name
    if subnet not in {s.name for s in model.width_spec.all_specs()}:
        raise SystemExit(f"unknown subnet {subnet!r} for family {args.family}")
    report = run_serving_comparison(
        model,
        subnet,
        num_requests=args.requests,
        concurrency=args.concurrency,
        max_batch=args.max_batch if args.max_batch is not None else 32,
        max_delay_s=(
            args.max_delay_ms if args.max_delay_ms is not None else 2.0
        ) / 1000.0,
        seed=args.seed,
    )
    print(f"serving {args.family}/{subnet}: {args.requests} single-image requests")
    for mode, stats in report["modes"].items():
        extra = ""
        if "mean_batch_rows" in stats:
            extra = f"  (mean batch {stats['mean_batch_rows']:.1f} rows)"
        print(f"  {mode:13s} {stats['requests_per_s']:9.1f} req/s{extra}")
    print(
        f"  speedup: micro-batched vs serial "
        f"{report['speedup']['micro_batched_vs_serial']:.2f}x, "
        f"concurrent vs serial {report['speedup']['concurrent_vs_serial']:.2f}x"
    )
    print(f"  zero-copy: {report['zero_copy']} (shared parameter ids verified)")
    return 0


def _serve_scheduled(model, args) -> int:
    """``serve --sla/--config``: SLA scheduler vs fixed-widest on the synthetic trace."""
    from dataclasses import replace

    from repro.scheduler.bench import ACCEPTANCE_TRACE, run_scheduler_comparison

    # The serve batching knobs apply to the scheduler's per-(replica, width)
    # queues too; --subnet/--requests/--concurrency describe the classic
    # comparison and have no meaning on the SLA trace.  The defaults layer
    # keeps the historical serve baseline (2 replicas, 32-row batches, 2ms
    # flush); --config then flags override it.
    scheduler_config = config_from_args(
        args,
        defaults={"replicas": 2, "max_batch": 32, "max_delay_s": 0.002},
    )
    deadline_s = scheduler_config.default_sla.deadline_s
    trace = replace(ACCEPTANCE_TRACE, deadline_s=deadline_s, seed=args.seed)
    tracer = recorder = None
    if args.trace:
        from repro.trace import TraceRecorder, Tracer

        tracer = Tracer(sampling=1.0, seed=args.seed)
        recorder = TraceRecorder(
            args.trace,
            meta={
                "name": "serve-sla",
                "deadline_s": deadline_s,
                "duration_s": trace.duration_s,
                "seed": args.seed,
            },
        )
    report = run_scheduler_comparison(
        model, trace, replicas=scheduler_config.replicas,
        scheduler_config=scheduler_config, tracer=tracer, recorder=recorder,
    )
    print(
        f"SLA serving ({args.family}): {report['arrivals']} requests over "
        f"{trace.duration_s:.1f}s, deadline {1e3 * deadline_s:.0f}ms, "
        f"{scheduler_config.replicas} replicas, replica kill at t={trace.kill_at_s}s"
    )
    for label in ("fixed_widest", "scheduler"):
        stats = report[label]
        lat = stats["latency"]
        print(
            f"  {label:13s} goodput {stats['goodput_rps']:7.1f} req/s  "
            f"miss-rate {stats['miss_rate']:.3f}  lost {stats['lost']}  "
            f"p50 {1e3 * lat['p50_s']:.1f}ms  p95 {1e3 * lat['p95_s']:.1f}ms  "
            f"p99 {1e3 * lat['p99_s']:.1f}ms"
        )
    comp = report["comparison"]
    print(
        f"  miss-rate reduction {comp['miss_rate_reduction']:+.3f}, "
        f"goodput ratio {comp['goodput_ratio']:.2f}x, "
        f"scheduler lost {comp['scheduler_lost']} requests"
    )
    if args.stats:
        workers = report["scheduler"]["frontend"].get("workers", [])
        if workers:
            print(f"  per-worker telemetry ({scheduler_config.replica_backend} backend):")
            for w in workers:
                rate = w["rows_per_s"]
                rate_s = f"{rate:9.1f}" if rate is not None else "      n/a"
                state = "up" if w["alive"] else "DOWN"
                print(
                    f"    worker {w['worker']}: {state:4s}  rows {w['rows']:6d}  "
                    f"batches {w['batches']:5d}  repacks {w['repacks']:4d}  "
                    f"rows/s {rate_s}"
                )
        else:
            print("  per-worker telemetry: none (thread backend records pool-level metrics)")
    if recorder is not None:
        path = recorder.write()
        stats = tracer.stats()
        print(
            f"  trace: {len(recorder)} request records -> {path} "
            f"(events emitted {stats['emitted']}, dropped {stats['dropped']})"
        )
    return 0


def cmd_replay(args) -> int:
    """``replay``: re-inject a scenario or trace artifact against the scheduler."""
    from repro.faults import FAULTY_SCENARIOS, FaultPlan, faulty_replayer
    from repro.trace import SCENARIOS, TraceRecorder, Tracer, TraceReplayer
    from repro.trace.scenarios import EXTRA_SCENARIOS

    if args.list:
        print(f"{'scenario':20s} {'seed':>5s} {'duration':>9s} {'requests':>9s}  generator")
        for name, spec in {**SCENARIOS, **EXTRA_SCENARIOS}.items():
            suffix = "  (+faults)" if name in FAULTY_SCENARIOS else ""
            print(
                f"{name:20s} {spec.seed:5d} {spec.duration_s:8.2f}s "
                f"{len(spec.generate()):9d}  {spec.generator}{suffix}"
            )
        return 0
    if (args.scenario is None) == (args.trace is None):
        raise SystemExit("replay needs exactly one of --scenario or --trace (or --list)")
    if args.replicas is not None and args.replicas <= 0:
        raise SystemExit("--replicas must be positive")
    if not 0.0 <= args.sampling <= 1.0:
        raise SystemExit("--sampling must be in [0, 1]")
    if args.tune and args.mode == "live":
        raise SystemExit("--tune replays in the virtual-time simulator; drop --mode live")
    if args.tune and args.out:
        raise SystemExit("--tune writes a tuned-config artifact, not a trace (--tune-out)")
    if args.tune_workers is not None and args.tune_workers <= 0:
        raise SystemExit("--tune-workers must be positive")
    if args.scenario is not None:
        if args.scenario in FAULTY_SCENARIOS:
            replayer = faulty_replayer(args.scenario)
        elif args.scenario in SCENARIOS or args.scenario in EXTRA_SCENARIOS:
            replayer = TraceReplayer.from_scenario(args.scenario)
        else:
            raise SystemExit(
                f"unknown scenario {args.scenario!r} (repro replay --list shows the zoo)"
            )
    else:
        replayer = TraceReplayer.from_file(args.trace)

    # Injection is gated on --faults; a bare flag uses the plan already
    # attached (faulty scenario / recorded incident), a value loads one.
    if args.faults is None:
        replayer.faults = None
    elif args.faults != "auto":
        import json as _json

        replayer.faults = FaultPlan.from_json(
            _json.loads(Path(args.faults).read_text())
        )
    elif not replayer.faults:
        raise SystemExit(
            "--faults given but neither the scenario nor the artifact "
            "carries a fault plan (pass a FaultPlan JSON file instead)"
        )

    model = build_model(args.family, rng=make_rng(args.seed))
    if args.weights:
        model.load_state_dict(load_state(args.weights))
    if args.tune:
        return _replay_tune(replayer, model, args)
    defaults: dict = {"replicas": 2}
    if replayer.faults and args.mode == "live":
        # An injected incident without self-healing would just lose the
        # crashed replicas' capacity for the rest of the run.
        defaults.update({"supervise": True, "retry": True})
    config = config_from_args(args, defaults=defaults)
    recorder = None
    if args.out:
        recorder = TraceRecorder(
            args.out,
            meta={
                **replayer.meta,
                "name": replayer.name,
                "duration_s": replayer.duration_s,
                "mode": args.mode,
            },
        )

    tracer = None
    if args.mode == "sim":
        result = replayer.simulate(model, config, recorder=recorder)
    else:
        tracer = Tracer(sampling=args.sampling, seed=args.seed)
        result = replayer.replay(model, config, tracer=tracer, recorder=recorder)

    def ms(value) -> str:
        return f"{1e3 * value:.1f}ms" if value is not None else "n/a"

    outcomes, lat = result["outcomes"], result["latency"]
    print(
        f"replay {result['name']} ({result['mode']}): {result['requests']} requests "
        f"over {result['duration_s']:.2f}s, {config.replicas} replicas"
    )
    if replayer.faults:
        kinds = [e.kind for e in replayer.faults.events]
        print(
            f"  faults    {len(kinds)} injected "
            f"({', '.join(f'{kinds.count(k)} {k}' for k in dict.fromkeys(kinds))})"
        )
    print(
        f"  outcomes  ok {outcomes['ok']}  late {outcomes['late']}  "
        f"rejected {outcomes['rejected']}  lost {outcomes['lost']}"
    )
    print(
        f"  miss-rate {result['miss_rate']:.3f}  goodput {result['goodput_rps']:7.1f} req/s  "
        f"p50 {ms(lat['p50_s'])}  p95 {ms(lat['p95_s'])}  p99 {ms(lat['p99_s'])}"
    )
    if result.get("widths"):
        served = "  ".join(f"{w}:{c}" for w, c in result["widths"].items())
        print(f"  widths    {served}")
    if tracer is not None:
        stats = tracer.stats()
        print(
            f"  tracing   sampling {stats['sampling']:.2f}  emitted {stats['emitted']}  "
            f"dropped {stats['dropped']}"
        )
    if recorder is not None:
        path = recorder.write()
        print(f"  recorded  {len(recorder)} request records -> {path}")
    return 0


def _replay_tune(replayer, model, args) -> int:
    """``replay --tune``: offline config search on the loaded trace."""
    from repro.tuning import default_workers, tune, write_tuned_config

    use_faults = replayer.faults is not None
    workers = args.tune_workers if args.tune_workers is not None else default_workers()
    result = tune(
        replayer, model, seed=args.seed, workers=workers, use_faults=use_faults
    )
    out = args.tune_out or f"tuned_{replayer.name}.json"
    path = write_tuned_config(out, result)
    stages = result.stages
    print(
        f"tune {result.trace_name}: {result.evaluations} simulations "
        f"(grid {stages['grid']}, coarse {stages['coarse']} @ "
        f"{stages['coarse_frac']:.0%} of trace, refine {stages['refine']}, "
        f"zoo-validated {stages['validated']}), seed {result.seed}, "
        f"{workers} workers{', faults injected' if use_faults else ''}"
    )
    for label, ev in (("baseline", result.baseline), ("tuned", result.tuned)):
        print(
            f"  {label:8s} miss-rate {ev.miss_rate:.3f}  "
            f"goodput {ev.goodput_rps:7.1f} req/s  ({ev.requests} requests)"
        )
    winner = dict(sorted(result.winner.mapping.items()))
    print(f"  winner    {winner}")
    if result.derived.get("rows_ladder"):
        backends = result.derived["conv_backend_per_rung"] or []
        rungs = "  ".join(
            f"{rows}:{backend}" for rows, backend in backends
        ) or "/".join(str(r) for r in result.derived["rows_ladder"])
        print(f"  derived   rows_ladder {rungs}")
    verdict = "improved" if result.improved else "no improvement (kept for audit)"
    print(f"  artifact  {path} ({verdict})")
    return 0


def cmd_dist(args) -> int:
    """Eager-vs-compiled comparison of the distributed engine on one scenario."""
    import numpy as np

    if args.batch <= 0 or args.batches <= 0:
        raise SystemExit("--batch/--batches must be positive")
    net = SlimmableConvNet(paper_width_spec(), rng=make_rng(args.seed))
    width = net.width_spec
    split = args.split if args.split is not None else width.split
    spec_name = args.subnet or "lower100"
    if spec_name not in {s.name for s in width.all_specs()}:
        raise SystemExit(f"unknown subnet {spec_name!r}")
    spec = width.find(spec_name)
    if args.mode == "ha" and not spec.is_lower():
        raise SystemExit("HA mode needs a combined (lower-anchored) subnet")
    x = make_rng(args.seed + 1).standard_normal(
        (args.batch, net.in_channels, net.image_size, net.image_size)
    )

    def drive(compiled: bool):
        if args.tcp:
            from repro.distributed.cluster import LocalCluster

            with LocalCluster(net, compiled=compiled) as cluster:
                return _dist_run(cluster.master, cluster.engine, args, spec, x)
        import threading

        from repro.comm import InProcChannel
        from repro.device import EmulatedDevice
        from repro.distributed import MasterRuntime, WorkerServer

        chan = InProcChannel()
        server = WorkerServer(
            EmulatedDevice(jetson_nx_worker(), net), chan.b, partition_split=split
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        master = MasterRuntime(
            EmulatedDevice(jetson_nx_master(), net),
            chan.a,
            partition_split=split,
            compiled=compiled,
        )
        try:
            return _dist_run(master, master.engine, args, spec, x)
        finally:
            master.shutdown_worker()
            thread.join(timeout=5.0)

    variants = [False, True] if args.compiled is None else [bool(args.compiled)]
    results = {}
    for compiled in variants:
        label = "compiled" if compiled else "eager"
        results[label] = drive(compiled)
        r = results[label]
        images = args.batch * args.batches
        print(
            f"{label:9s} {args.mode.upper()} {spec_name}: "
            f"{images / r['wall_s']:8.1f} img/s wall  "
            f"(emulated compute {r['compute_s']:.4f}s, comm {r['comm_s']:.4f}s)"
        )
        if r["exchange_bytes"]:
            total = sum(r["exchange_bytes"])
            print(f"          per-round exchange bytes {r['exchange_bytes']} (total {total})")
        if r["overlap"] is not None:
            print(f"          dispatch overlap {r['overlap']:.2f} (1/k serial .. 1.0 fully overlapped)")
    if len(results) == 2:
        same = np.array_equal(results["eager"]["logits"], results["compiled"]["logits"])
        speedup = results["eager"]["wall_s"] / results["compiled"]["wall_s"]
        print(f"bitwise parity: {same}   compiled speedup {speedup:.2f}x")
        if not same:
            return 1
    return 0


def _dist_run(master, engine, args, spec, x):
    """Run one warmup + ``--batches`` timed batches; return facts for cmd_dist."""
    def once():
        if args.mode == "ha":
            return master.run_ha(spec, x)
        if args.mode == "ht":
            lower = master.device.net.width_spec.find("lower50")
            upper = master.device.net.width_spec.find("upper50")
            return master.run_ht(lower, upper, x, x)[0]
        return master.run_local(spec, x)

    once()  # warmup: compile plans, warm packed caches
    engine.ledger.reset()
    started = time.perf_counter()
    logits = None
    for _ in range(args.batches):
        logits = once()
    wall = time.perf_counter() - started
    overlap = engine.metrics.ewma("round.overlap").value
    if overlap is None:
        overlap = engine.metrics.ewma("stream.overlap").value
    return {
        "wall_s": wall,
        "compute_s": engine.ledger.compute_s,
        "comm_s": engine.ledger.comm_s,
        "exchange_bytes": list(engine.last_exchange_bytes),
        "overlap": overlap,
        "logits": logits,
    }


def cmd_calibration(_args) -> int:
    net = SlimmableConvNet(paper_width_spec(), rng=make_rng(0))
    print(f"{'operating point':24s} {'paper':>7s} {'emulated':>9s} {'error':>7s}")
    for point in calibration_points(net).values():
        print(
            f"{point.name:24s} {point.paper_ips:7.1f} {point.predicted_ips:9.2f} "
            f"{100 * point.relative_error:6.2f}%"
        )
    return 0


COMMANDS = {
    "train": cmd_train,
    "evaluate": cmd_evaluate,
    "fig2": cmd_fig2,
    "simulate": cmd_simulate,
    "serve": cmd_serve,
    "replay": cmd_replay,
    "dist": cmd_dist,
    "calibration": cmd_calibration,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    old_policy = set_dtype_policy(resolve_dtype_policy(args.dtype_policy))
    try:
        return COMMANDS[args.command](args)
    finally:
        set_dtype_policy(old_policy)


if __name__ == "__main__":
    sys.exit(main())
