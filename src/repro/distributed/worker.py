"""Worker-side protocol server.

A Worker owns the full slimmable weight store (models are small; what
matters for the paper's reliability argument is which *certified* slices it
may run, not artificial weight withholding) and serves the Master's
requests: standalone sub-network inference (HT mode), partitioned layer
steps (HA mode), and heartbeats.

Failure injection: a :class:`~repro.device.failure.CrashCounter` makes the
worker die after N requests — it stops responding and closes its transport,
exactly what a power failure looks like from the Master's side.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.comm.message import Message, MessageKind, error_message, result_message
from repro.comm.transport import Transport, TransportError
from repro.comm.wire import cast_for_wire
from repro.device.cost import partitioned_device_costs, subnet_num_layers
from repro.device.emulated import DeviceFailed, EmulatedDevice
from repro.distributed.partitioned import (
    conv_block_half,
    fc_partial,
    feature_slice_for_block,
    flatten_channel_block,
)
from repro.engine.graph import BlockPartition
from repro.slimmable.spec import SubNetSpec
from repro.utils.dtypes import compute_dtype
from repro.utils.logging import get_logger


class WorkerServer:
    """Serves one Master over one transport until shutdown or crash."""

    def __init__(
        self,
        device: EmulatedDevice,
        transport: Transport,
        *,
        partition_split: int,
    ) -> None:
        self.device = device
        self.transport = transport
        self.split = partition_split
        # The shared block geometry: the worker owns the upper block of the
        # same two-way partition the engine compiles HA plans against.
        self.partition = BlockPartition.two_way(
            partition_split, device.net.width_spec.max_width
        )
        self.logger = get_logger(f"worker.{device.name}")
        self._ha_half: Optional[np.ndarray] = None
        self._ha_spec: Optional[SubNetSpec] = None

    # -- main loop -------------------------------------------------------------

    def serve_forever(self, poll_timeout: float = 0.5) -> None:
        """Handle requests until SHUTDOWN, CRASH, or transport loss."""
        while True:
            try:
                message = self.transport.recv(timeout=poll_timeout)
            except TransportError:
                if self.transport.closed:
                    return
                continue
            if not self._handle(message):
                return

    def _handle(self, message: Message) -> bool:
        """Dispatch one message; returns False when the loop should stop."""
        if message.kind == MessageKind.SHUTDOWN:
            self.transport.close()
            return False
        if message.kind == MessageKind.CRASH:
            # Simulated power failure: vanish without a reply.
            self.device.crash()
            self.transport.close()
            return False
        try:
            reply = self._dispatch(message)
        except DeviceFailed:
            self.transport.close()
            return False
        except (ValueError, KeyError) as exc:
            reply = error_message(f"{type(exc).__name__}: {exc}")
        try:
            self.transport.send(reply)
        except TransportError:
            return False
        return True

    def _dispatch(self, message: Message) -> Message:
        if message.kind == MessageKind.PING:
            self.device._check_alive()
            return Message(MessageKind.PONG, fields={"device": self.device.name})
        if message.kind == MessageKind.RUN_SUBNET:
            return self._run_subnet(message)
        if message.kind == MessageKind.PARTIAL_FORWARD:
            return self._partial_forward(message)
        return error_message(f"unsupported message kind {message.kind!r}")

    # -- handlers -----------------------------------------------------------------

    def _run_subnet(self, message: Message) -> Message:
        spec = self.device.net.width_spec.find(message.fields["spec"])
        x = message.arrays["x"]
        logits = self.device.execute_subnet(spec, x)
        compute_s = self.device.estimated_latency(spec) * x.shape[0]
        return result_message(
            {"logits": cast_for_wire(logits)},
            spec=spec.name,
            compute_s=compute_s,
        )

    def _partial_forward(self, message: Message) -> Message:
        self.device._check_alive()
        op = message.fields["op"]
        spec = self.device.net.width_spec.find(message.fields["spec"])
        if op == "layer":
            return self._partial_layer(message, spec)
        if op == "fc":
            return self._partial_fc(spec)
        raise ValueError(f"unknown partial_forward op {op!r}")

    def _partial_layer(self, message: Message, spec: SubNetSpec) -> Message:
        layer = int(message.fields["layer"])
        net = self.device.net
        if layer == 0:
            full = message.arrays["input"]
            self._ha_spec = spec
            in_slice = None
        else:
            if self._ha_half is None or self._ha_spec is None or self._ha_spec != spec:
                raise ValueError("partitioned session out of order: no stored half")
            master_half = message.arrays["master_half"].astype(compute_dtype())
            full = np.concatenate([master_half, self._ha_half], axis=1)
            in_slice = spec.conv_slices[layer - 1]
        out_slice = spec.conv_slices[layer]
        upper = self.partition.clipped_block(1, out_slice.stop)
        half = conv_block_half(net, layer, full, upper, in_slice)
        self._ha_half = half
        self._account_partial_compute(spec, layer)
        return result_message({"half": cast_for_wire(half)}, layer=layer)

    def _partial_fc(self, spec: SubNetSpec) -> Message:
        if self._ha_half is None or self._ha_spec != spec:
            raise ValueError("partitioned session out of order: no stored features")
        net = self.device.net
        upper = self.partition.clipped_block(1, spec.last_slice.stop)
        feats = flatten_channel_block(self._ha_half)
        logits = fc_partial(net, feats, feature_slice_for_block(net, upper), include_bias=False)
        self._account_partial_compute(spec, len(spec.conv_slices))
        self._ha_half = None
        self._ha_spec = None
        return result_message({"partial_logits": cast_for_wire(logits)})

    def _account_partial_compute(self, spec: SubNetSpec, layer: int) -> None:
        _, worker_costs, _ = partitioned_device_costs(self.device.net, spec, self.split)
        flops = worker_costs[layer].flops
        per_layer_overhead = self.device.profile.layer_overhead_s
        self.device.busy_time_s += self.device.profile.compute_time(flops, 0) + per_layer_overhead
        self.device.requests_served += 1
