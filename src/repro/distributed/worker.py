"""Worker-side protocol server.

A Worker owns the full slimmable weight store (models are small; what
matters for the paper's reliability argument is which *certified* slices it
may run, not artificial weight withholding) and serves the Master's
requests: standalone sub-network inference (HT mode), partitioned layer
steps (HA mode), and heartbeats.

Failure injection: a :class:`~repro.device.failure.CrashCounter` makes the
worker die after N requests — it stops responding and closes its transport,
exactly what a power failure looks like from the Master's side.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.comm.message import Message, MessageKind, error_message, result_message
from repro.comm.transport import Transport, TransportError
from repro.comm.wire import cast_for_wire
from repro.device.cost import block_partitioned_costs, partitioned_device_costs, subnet_num_layers
from repro.device.emulated import DeviceFailed, EmulatedDevice
from repro.distributed.partitioned import (
    conv_block_half,
    fc_partial,
    feature_slice_for_block,
    flatten_channel_block,
)
from repro.engine.graph import BlockPartition
from repro.slimmable.spec import ChannelSlice, SubNetSpec
from repro.utils.dtypes import compute_dtype
from repro.utils.logging import get_logger


class WorkerServer:
    """Serves one Master over one transport until shutdown or crash."""

    def __init__(
        self,
        device: EmulatedDevice,
        transport: Transport,
        *,
        partition_split: int,
    ) -> None:
        self.device = device
        self.transport = transport
        self.split = partition_split
        # The shared block geometry: the worker owns the upper block of the
        # same two-way partition the engine compiles HA plans against.
        self.partition = BlockPartition.two_way(
            partition_split, device.net.width_spec.max_width
        )
        self.logger = get_logger(f"worker.{device.name}")
        self._ha_half: Optional[np.ndarray] = None
        self._ha_spec: Optional[SubNetSpec] = None
        # Compiled-path state (PARTITION_ROUND protocol).
        self._plan_compiler = None  # lazy PartitionPlanCompiler
        self._plan = None
        self._plan_run = None
        # Per-layer cost tables are pure functions of (spec, boundaries);
        # memoised so accounting is not recomputed every round.
        self._cost_cache: Dict[tuple, list] = {}

    # -- main loop -------------------------------------------------------------

    def serve_forever(self, poll_timeout: float = 0.5) -> None:
        """Handle requests until SHUTDOWN, CRASH, or transport loss."""
        while True:
            try:
                message = self.transport.recv(timeout=poll_timeout)
            except TransportError:
                if self.transport.closed:
                    return
                continue
            if not self._handle(message):
                return

    def _handle(self, message: Message) -> bool:
        """Dispatch one message; returns False when the loop should stop."""
        if message.kind == MessageKind.SHUTDOWN:
            self.transport.close()
            return False
        if message.kind == MessageKind.CRASH:
            # Simulated power failure: vanish without a reply.
            self.device.crash()
            self.transport.close()
            return False
        try:
            reply = self._dispatch(message)
        except DeviceFailed:
            self.transport.close()
            return False
        except (ValueError, KeyError) as exc:
            reply = error_message(f"{type(exc).__name__}: {exc}")
        try:
            self.transport.send(reply)
        except TransportError:
            return False
        return True

    def _dispatch(self, message: Message) -> Message:
        if message.kind == MessageKind.PING:
            self.device._check_alive()
            return Message(MessageKind.PONG, fields={"device": self.device.name})
        if message.kind == MessageKind.RUN_SUBNET:
            return self._run_subnet(message)
        if message.kind == MessageKind.PARTIAL_FORWARD:
            return self._partial_forward(message)
        if message.kind == MessageKind.PARTITION_ROUND:
            return self._partition_round(message)
        return error_message(f"unsupported message kind {message.kind!r}")

    # -- handlers -----------------------------------------------------------------

    def _run_subnet(self, message: Message) -> Message:
        spec = self.device.net.width_spec.find(message.fields["spec"])
        x = message.arrays["x"]
        logits = self.device.execute_subnet(spec, x)
        compute_s = self.device.estimated_latency(spec) * x.shape[0]
        return result_message(
            {"logits": cast_for_wire(logits)},
            spec=spec.name,
            compute_s=compute_s,
        )

    def _partial_forward(self, message: Message) -> Message:
        self.device._check_alive()
        op = message.fields["op"]
        spec = self.device.net.width_spec.find(message.fields["spec"])
        if op == "layer":
            return self._partial_layer(message, spec)
        if op == "fc":
            return self._partial_fc(spec)
        raise ValueError(f"unknown partial_forward op {op!r}")

    def _partial_layer(self, message: Message, spec: SubNetSpec) -> Message:
        layer = int(message.fields["layer"])
        net = self.device.net
        if layer == 0:
            full = message.arrays["input"]
            self._ha_spec = spec
            in_slice = None
        else:
            if self._ha_half is None or self._ha_spec is None or self._ha_spec != spec:
                raise ValueError("partitioned session out of order: no stored half")
            master_half = message.arrays["master_half"].astype(compute_dtype())
            full = np.concatenate([master_half, self._ha_half], axis=1)
            in_slice = spec.conv_slices[layer - 1]
        out_slice = spec.conv_slices[layer]
        upper = self.partition.clipped_block(1, out_slice.stop)
        half = conv_block_half(net, layer, full, upper, in_slice)
        self._ha_half = half
        self._account_partial_compute(spec, layer)
        return result_message({"half": cast_for_wire(half)}, layer=layer)

    def _partial_fc(self, spec: SubNetSpec) -> Message:
        if self._ha_half is None or self._ha_spec != spec:
            raise ValueError("partitioned session out of order: no stored features")
        net = self.device.net
        upper = self.partition.clipped_block(1, spec.last_slice.stop)
        feats = flatten_channel_block(self._ha_half)
        logits = fc_partial(net, feats, feature_slice_for_block(net, upper), include_bias=False)
        self._account_partial_compute(spec, len(spec.conv_slices))
        self._ha_half = None
        self._ha_spec = None
        return result_message({"partial_logits": cast_for_wire(logits)})

    # -- compiled partitioned rounds (delta halo exchange) ---------------------

    def _partition_round(self, message: Message) -> Message:
        self.device._check_alive()
        op = message.fields["op"]
        spec = self.device.net.width_spec.find(message.fields["spec"])
        if op == "layer":
            return self._plan_layer(message, spec)
        if op == "fc":
            return self._plan_fc(message, spec)
        raise ValueError(f"unknown partition_round op {op!r}")

    def _plan_layer(self, message: Message, spec: SubNetSpec) -> Message:
        layer = int(message.fields["layer"])
        need_half = bool(message.fields.get("need_half", True))
        if layer == 0:
            # The plan parameters ride on the first round message (the
            # engine's begin_partition_plan is message-free), so a compiled
            # batch costs exactly as many messages as an eager one.
            from repro.engine.dist_plan import PartitionPlanCompiler

            if self._plan_compiler is None:
                self._plan_compiler = PartitionPlanCompiler(self.device.net)
            boundaries = tuple(int(b) for b in message.fields["boundaries"])
            index = int(message.fields["index"])
            rows = int(message.fields["rows"])
            plan = self._plan_compiler.plan_for(spec, boundaries, index, rows)
            if self._plan_run is not None:  # previous batch abandoned mid-flight
                self._plan.finish(self._plan_run)
            self._plan = plan
            self._plan_run = plan.begin(rows)
            plan.scatter_input(self._plan_run, message.arrays["input"])
        else:
            if self._plan_run is None or self._plan.spec.name != spec.name:
                raise ValueError("compiled partitioned session out of order")
            for j, (start, stop) in enumerate(message.fields.get("peers", ())):
                self._plan.absorb(
                    self._plan_run,
                    layer,
                    ChannelSlice(int(start), int(stop)),
                    message.arrays[f"peer{j}"],
                )
        half = self._plan.run_layer(self._plan_run, layer)
        self._account_plan_compute(spec, layer)
        arrays = {}
        if need_half and half is not None:
            arrays["half"] = cast_for_wire(half)
        return result_message(arrays, layer=layer)

    def _plan_fc(self, message: Message, spec: SubNetSpec) -> Message:
        if self._plan_run is None or self._plan.spec.name != spec.name:
            raise ValueError("compiled partitioned session out of order")
        include_bias = bool(message.fields.get("include_bias", False))
        logits = self._plan.run_fc(self._plan_run, include_bias)
        # Copy before releasing the workspace: the logits are an arena view.
        out = np.array(cast_for_wire(logits), copy=True)
        self._account_plan_compute(spec, len(spec.conv_slices))
        self._plan.finish(self._plan_run)
        self._plan_run = None
        return result_message({"partial_logits": out})

    def _account_plan_compute(self, spec: SubNetSpec, layer: int) -> None:
        """Same device-clock charges as the eager path, over the plan's blocks."""
        key = (spec.name, self._plan.boundaries, self._plan.index)
        costs = self._cost_cache.get(key)
        if costs is None:
            per_device, _ = block_partitioned_costs(
                self.device.net, spec, self._plan.boundaries
            )
            costs = self._cost_cache[key] = per_device[self._plan.index]
        profile = self.device.profile
        self.device.busy_time_s += (
            profile.compute_time(costs[layer].flops, 0) + profile.layer_overhead_s
        )
        self.device.requests_served += 1

    def _account_partial_compute(self, spec: SubNetSpec, layer: int) -> None:
        key = (spec.name, self.split)
        costs = self._cost_cache.get(key)
        if costs is None:
            _, worker_costs, _ = partitioned_device_costs(
                self.device.net, spec, self.split
            )
            costs = self._cost_cache[key] = worker_costs
        flops = costs[layer].flops
        per_layer_overhead = self.device.profile.layer_overhead_s
        self.device.busy_time_s += self.device.profile.compute_time(flops, 0) + per_layer_overhead
        self.device.requests_served += 1
