"""Width partitioning of a slimmable model over two devices.

In the paper's deployment the Master holds the *lower* half of every
layer's kernels and the Worker the *upper* half (Fig. 1a).  This module
captures that residency: which weight rows live where, and therefore which
sub-networks a device can still run after its peer dies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.slimmable.spec import ChannelSlice, SubNetSpec, WidthSpec

MASTER = "master"
WORKER = "worker"
ROLES = (MASTER, WORKER)


@dataclass(frozen=True)
class WidthPartition:
    """A two-way split of output channels at ``split``."""

    width_spec: WidthSpec
    split: int

    def __post_init__(self) -> None:
        if not 0 < self.split < self.width_spec.max_width:
            raise ValueError(
                f"split {self.split} outside (0, {self.width_spec.max_width})"
            )

    @classmethod
    def at_spec_split(cls, width_spec: WidthSpec) -> "WidthPartition":
        """Partition at the width spec's upper/lower boundary (paper: 50%)."""
        return cls(width_spec, width_spec.split)

    def device_slice(self, role: str) -> ChannelSlice:
        """Output-channel rows resident on a device."""
        if role == MASTER:
            return ChannelSlice(0, self.split)
        if role == WORKER:
            return ChannelSlice(self.split, self.width_spec.max_width)
        raise ValueError(f"unknown role {role!r}")

    def resident_specs(self, role: str) -> List[SubNetSpec]:
        """Sub-networks whose weights are fully resident on ``role``.

        A standalone sub-network with uniform slice ``[a, b)`` needs weight
        rows ``[a, b)`` of every layer (its input columns are within the
        same range, which lies inside those rows' column space only for the
        diagonal block the device already stores — the device holds its
        rows over *all* input columns, so containment of the row range is
        sufficient).
        """
        resident = self.device_slice(role)
        out: List[SubNetSpec] = []
        for spec in self.width_spec.all_specs():
            if all(resident.contains(s) for s in spec.conv_slices):
                out.append(spec)
        return out

    def survivor_options(self, role: str, certified: Tuple[str, ...]) -> List[SubNetSpec]:
        """Resident AND standalone-certified sub-networks for a lone device."""
        return [s for s in self.resident_specs(role) if s.name in certified]

    def residency_table(self) -> Dict[str, List[str]]:
        """Human-readable residency map (used by reports and docs)."""
        return {role: [s.name for s in self.resident_specs(role)] for role in ROLES}
