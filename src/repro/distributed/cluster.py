"""Multi-process edge cluster on localhost.

Spawns worker devices as separate OS processes (the closest laptop-scale
stand-in for separate boards: independent address spaces, real TCP between
them, killable with a signal) and wires a Master runtime to them.  The
master is the engine facade, so the cluster exercises the exact same
:class:`~repro.engine.engine.ExecutionEngine` code path as the in-process
tests — just with a TCP :class:`~repro.engine.endpoints.TransportEndpoint`.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from typing import List, Optional

from repro.comm.latency_model import CommLatencyModel
from repro.comm.tcp import connect
from repro.comm.transport import TransportError
from repro.device.emulated import EmulatedDevice
from repro.device.profiles import jetson_nx_master
from repro.distributed.master import MasterRuntime
from repro.nn.checkpoint import save_state
from repro.slimmable.slim_net import SlimmableConvNet
from repro.utils.logging import get_logger

_LOGGER = get_logger("cluster")


class WorkerProcess:
    """Handle on a spawned worker OS process."""

    def __init__(
        self,
        weights_path: str,
        *,
        split: int,
        lower_widths,
        max_width: int,
        num_convs: int,
        crash_after: Optional[int] = None,
    ) -> None:
        cmd = [
            sys.executable,
            "-m",
            "repro.distributed.worker_main",
            "--port",
            "0",
            "--weights",
            weights_path,
            "--split",
            str(split),
            "--max-width",
            str(max_width),
            "--num-convs",
            str(num_convs),
            "--lower-widths",
            *[str(w) for w in lower_widths],
        ]
        if crash_after is not None:
            cmd += ["--crash-after", str(crash_after)]
        # The child must import the same `repro` the parent is running, even
        # from a plain checkout where the package is not installed.
        import repro

        pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (pkg_root, env.get("PYTHONPATH")) if p
        )
        self.process = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True, env=env
        )
        self.port = self._await_ready()

    def _await_ready(self, timeout: float = 20.0) -> int:
        deadline = time.time() + timeout
        line = ""
        while time.time() < deadline:
            line = self.process.stdout.readline()
            if line.startswith("READY"):
                return int(line.split()[1])
            if self.process.poll() is not None:
                break
        raise RuntimeError(f"worker process failed to start (last output: {line!r})")

    def kill(self) -> None:
        """Hard-kill the process — the 'power outage' failure mode."""
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=5.0)

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                self.process.kill()

    @property
    def alive(self) -> bool:
        return self.process.poll() is None


class LocalCluster:
    """One master (in-process) + one worker (subprocess) over real TCP."""

    def __init__(
        self,
        net: SlimmableConvNet,
        *,
        comm_model: Optional[CommLatencyModel] = None,
        crash_after: Optional[int] = None,
        compiled: bool = False,
    ) -> None:
        self.net = net
        self._tmpdir = tempfile.TemporaryDirectory(prefix="fluid-cluster-")
        weights_path = os.path.join(self._tmpdir.name, "weights.npz")
        save_state(weights_path, net.state_dict())

        spec = net.width_spec
        self.worker_process = WorkerProcess(
            weights_path,
            split=spec.split,
            lower_widths=spec.lower_widths,
            max_width=spec.max_width,
            num_convs=spec.num_convs,
            crash_after=crash_after,
        )
        transport = self._connect_with_retry(self.worker_process.port)
        master_device = EmulatedDevice(jetson_nx_master(), net)
        self.master = MasterRuntime(
            master_device,
            transport,
            partition_split=spec.split,
            comm_model=comm_model,
            compiled=compiled,
        )

    @property
    def engine(self):
        """The unified execution engine driving this cluster over TCP."""
        return self.master.engine

    @staticmethod
    def _connect_with_retry(port: int, attempts: int = 20, delay: float = 0.1):
        last: Optional[Exception] = None
        for _ in range(attempts):
            try:
                return connect("127.0.0.1", port, timeout=2.0)
            except TransportError as exc:
                last = exc
                time.sleep(delay)
        raise RuntimeError(f"could not connect to worker on port {port}: {last}")

    def kill_worker(self) -> None:
        self.worker_process.kill()

    def close(self) -> None:
        try:
            self.master.shutdown_worker()
        finally:
            self.worker_process.terminate()
            self._tmpdir.cleanup()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
