"""Layer-wise (pipeline) partitioning — the alternative the paper rejects.

Distributed-inference systems split a DNN either by *width* (the paper's
choice, following MoDNN-style output-channel partitioning) or by *depth*:
device A runs the first ``k`` layers, device B the rest, with one
activation transfer at the cut.  Depth splitting ships less data but
serialises the devices (they pipeline, so per-image latency includes both
stages), and it is even less failure-tolerant: neither prefix nor suffix
weights compute logits alone, for *any* training procedure.

This module provides the analytical model for that baseline so the benches
can show where each strategy wins and why layer splitting cannot deliver
the paper's reliability property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.comm.latency_model import CommLatencyModel
from repro.device.cost import LayerCost, subnet_layer_costs
from repro.device.profiles import DeviceProfile
from repro.distributed.throughput import ThroughputBreakdown
from repro.slimmable.slim_net import SlimmableConvNet
from repro.slimmable.spec import SubNetSpec


@dataclass(frozen=True)
class LayerCut:
    """A depth split: layers ``[0, cut)`` on the Master, the rest on the Worker."""

    cut: int
    num_layers: int

    def __post_init__(self) -> None:
        if not 0 < self.cut < self.num_layers:
            raise ValueError(f"cut must be inside (0, {self.num_layers})")


class LayerPartitionModel:
    """Analytical latency/throughput of a depth-partitioned deployment."""

    def __init__(
        self,
        net: SlimmableConvNet,
        master: DeviceProfile,
        worker: DeviceProfile,
        comm: CommLatencyModel,
    ) -> None:
        self.net = net
        self.master = master
        self.worker = worker
        self.comm = comm

    def stage_costs(
        self, spec: SubNetSpec, cut: LayerCut
    ) -> Tuple[List[LayerCost], List[LayerCost], int]:
        """``(master_layers, worker_layers, transfer_bytes_at_cut)``."""
        costs = subnet_layer_costs(self.net, spec)
        if cut.num_layers != len(costs):
            raise ValueError(
                f"cut over {cut.num_layers} layers but model has {len(costs)}"
            )
        master_side = costs[: cut.cut]
        worker_side = costs[cut.cut :]
        transfer = master_side[-1].activation_bytes
        return master_side, worker_side, transfer

    def latency(self, spec: SubNetSpec, cut: LayerCut) -> ThroughputBreakdown:
        """Per-image latency of the sequential (non-overlapped) pipeline.

        The paper's methodology sums compute and comm per image; a
        depth-split image traverses both stages and the cut transfer.
        """
        master_side, worker_side, transfer = self.stage_costs(spec, cut)
        t_m = self.master.compute_time(
            sum(c.flops for c in master_side), len(master_side)
        )
        t_w = self.worker.compute_time(
            sum(c.flops for c in worker_side), len(worker_side)
        )
        t_comm = self.comm.transfer_time(transfer)
        total = t_m + t_w + t_comm
        return ThroughputBreakdown(
            mode="layer-split",
            compute_master_s=t_m,
            compute_worker_s=t_w,
            comm_s=t_comm,
            throughput_ips=1.0 / total,
        )

    def pipelined_throughput(self, spec: SubNetSpec, cut: LayerCut) -> float:
        """Steady-state throughput with stage overlap (bounded by the
        slowest stage including its transfer)."""
        master_side, worker_side, transfer = self.stage_costs(spec, cut)
        t_m = self.master.compute_time(
            sum(c.flops for c in master_side), len(master_side)
        )
        t_w = self.worker.compute_time(
            sum(c.flops for c in worker_side), len(worker_side)
        )
        t_comm = self.comm.transfer_time(transfer)
        bottleneck = max(t_m + t_comm, t_w)
        return 1.0 / bottleneck

    def best_cut(self, spec: SubNetSpec, pipelined: bool = False) -> Tuple[LayerCut, float]:
        """The depth split with the highest throughput."""
        num_layers = len(subnet_layer_costs(self.net, spec))
        best: Tuple[LayerCut, float] = (LayerCut(1, num_layers), 0.0)
        for cut_point in range(1, num_layers):
            cut = LayerCut(cut_point, num_layers)
            if pipelined:
                ips = self.pipelined_throughput(spec, cut)
            else:
                ips = self.latency(spec, cut).throughput_ips
            if ips > best[1]:
                best = (cut, ips)
        return best

    @staticmethod
    def survives_single_failure() -> bool:
        """Depth splitting never survives a device failure: a weight prefix
        has no classifier head and a suffix has no input stem, regardless of
        how the model was trained.  (Compare WidthPartition.survivor_options,
        which depends on certification.)"""
        return False
