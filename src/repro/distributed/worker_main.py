"""Worker process entry point.

Run as ``python -m repro.distributed.worker_main --port P --weights W.npz``.
Builds the paper's model architecture, loads the trained weights, and
serves a Master over TCP.  Used by :mod:`repro.distributed.cluster` to
stand up a real multi-process edge cluster on localhost.
"""

from __future__ import annotations

import argparse
import sys

from repro.comm.tcp import TcpListener
from repro.device.emulated import EmulatedDevice
from repro.device.failure import CrashCounter
from repro.device.profiles import jetson_nx_worker
from repro.distributed.worker import WorkerServer
from repro.nn.checkpoint import load_state
from repro.slimmable.slim_net import SlimmableConvNet
from repro.slimmable.spec import WidthSpec
from repro.utils.rng import make_rng


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description="Fluid DyDNN worker device")
    parser.add_argument("--port", type=int, required=True, help="TCP port to listen on")
    parser.add_argument("--weights", type=str, required=True, help="npz checkpoint path")
    parser.add_argument("--max-width", type=int, default=16)
    parser.add_argument("--lower-widths", type=int, nargs="+", default=[4, 8, 12, 16])
    parser.add_argument("--split", type=int, default=8)
    parser.add_argument("--num-convs", type=int, default=3)
    parser.add_argument(
        "--crash-after",
        type=int,
        default=None,
        help="simulate a power failure after N requests",
    )
    parser.add_argument("--ready-fd", type=int, default=None, help=argparse.SUPPRESS)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    width_spec = WidthSpec(
        max_width=args.max_width,
        lower_widths=tuple(args.lower_widths),
        split=args.split,
        num_convs=args.num_convs,
    )
    net = SlimmableConvNet(width_spec, rng=make_rng(0))
    net.load_state_dict(load_state(args.weights))
    net.train(False)

    device = EmulatedDevice(
        jetson_nx_worker(),
        net,
        crash_counter=CrashCounter(args.crash_after),
    )
    listener = TcpListener(args.port)
    # Signal readiness (the bound port) on stdout for the cluster launcher.
    print(f"READY {listener.address[1]}", flush=True)
    try:
        transport = listener.accept(timeout=30.0)
        server = WorkerServer(device, transport, partition_split=args.split)
        server.serve_forever()
    finally:
        listener.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
