"""Execution modes and availability scenarios (paper §II-B / Fig. 2)."""

from __future__ import annotations

from enum import Enum


class ExecutionMode(Enum):
    """How the system is currently running inference."""

    HIGH_ACCURACY = "HA"    # devices jointly run the combined model on the same input
    HIGH_THROUGHPUT = "HT"  # devices run independent sub-networks on different inputs
    SOLO = "solo"           # one device runs a standalone sub-network
    FAILED = "failed"       # no certified deployment exists

    def __str__(self) -> str:
        return self.value


class Scenario(Enum):
    """Device availability scenarios evaluated in Fig. 2."""

    BOTH = "master_and_worker"
    ONLY_MASTER = "only_master"
    ONLY_WORKER = "only_worker"

    @property
    def alive(self) -> frozenset:
        return {
            Scenario.BOTH: frozenset({"master", "worker"}),
            Scenario.ONLY_MASTER: frozenset({"master"}),
            Scenario.ONLY_WORKER: frozenset({"worker"}),
        }[self]

    def __str__(self) -> str:
        return self.value


ALL_SCENARIOS = (Scenario.BOTH, Scenario.ONLY_MASTER, Scenario.ONLY_WORKER)
