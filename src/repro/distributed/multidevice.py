"""N-device generalisation of the Fluid scheme.

The paper evaluates two devices but states its training algorithm "is
applicable to any number" of sub-networks.  This module generalises the
width partition to ``N`` channel *blocks*, one per device:

* block ``k`` holds output-channel rows ``[b_k, b_{k+1})`` of every layer;
* a Fluid-N model certifies each block's slice standalone, so any single
  surviving device keeps serving;
* HT mode runs all alive blocks as independent streams (rates add);
* HA mode width-partitions the combined model over the alive devices with
  an all-gather per layer (the exchange grows with the block count).

The analytical model mirrors :class:`SystemThroughputModel`; training for
block families reuses the nested incremental machinery (each block is an
"upper"-style slice with its own revival pass).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.comm.latency_model import CommLatencyModel
from repro.device.cost import subnet_layer_costs, subnet_num_layers
from repro.device.profiles import DeviceProfile
from repro.slimmable.slim_net import SlimmableConvNet
from repro.slimmable.spec import ChannelSlice, SubNetSpec, uniform_spec


@dataclass(frozen=True)
class BlockPartition:
    """Channel blocks ``[boundaries[k], boundaries[k+1])`` per device."""

    boundaries: Tuple[int, ...]  # strictly increasing, starts at 0

    def __post_init__(self) -> None:
        b = self.boundaries
        if len(b) < 3:
            raise ValueError("need at least two blocks (three boundaries)")
        if b[0] != 0:
            raise ValueError("boundaries must start at 0")
        if list(b) != sorted(set(b)):
            raise ValueError("boundaries must be strictly increasing")

    @property
    def num_blocks(self) -> int:
        return len(self.boundaries) - 1

    @property
    def max_width(self) -> int:
        return self.boundaries[-1]

    def block_slice(self, index: int) -> ChannelSlice:
        if not 0 <= index < self.num_blocks:
            raise ValueError(f"block index {index} out of range")
        return ChannelSlice(self.boundaries[index], self.boundaries[index + 1])

    def block_spec(self, index: int, num_convs: int) -> SubNetSpec:
        s = self.block_slice(index)
        return uniform_spec(f"block{index}", s.start, s.stop, num_convs)

    def combined_spec(self, num_convs: int) -> SubNetSpec:
        return uniform_spec("combined", 0, self.max_width, num_convs)

    @classmethod
    def even(cls, num_blocks: int, max_width: int) -> "BlockPartition":
        if num_blocks <= 1:
            raise ValueError("need at least two blocks")
        if max_width % num_blocks:
            raise ValueError(f"{max_width} channels do not split into {num_blocks} blocks")
        step = max_width // num_blocks
        return cls(tuple(range(0, max_width + 1, step)))


class MultiDeviceModel:
    """Analytical throughput of an N-device Fluid deployment."""

    def __init__(
        self,
        net: SlimmableConvNet,
        profiles: Sequence[DeviceProfile],
        comm: CommLatencyModel,
        partition: BlockPartition,
    ) -> None:
        if len(profiles) != partition.num_blocks:
            raise ValueError(
                f"{len(profiles)} devices for {partition.num_blocks} blocks"
            )
        if partition.max_width != net.width_spec.max_width:
            raise ValueError("partition width does not match the network")
        self.net = net
        self.profiles = list(profiles)
        self.comm = comm
        self.partition = partition

    # -- standalone / HT -------------------------------------------------------

    def block_latency(self, device_index: int) -> float:
        """Per-image latency of device ``i`` running its own block."""
        spec = self.partition.block_spec(device_index, len(self.net.convs))
        flops = sum(c.flops for c in subnet_layer_costs(self.net, spec))
        return self.profiles[device_index].compute_time(
            flops, subnet_num_layers(self.net)
        )

    def ht_throughput(self, alive: Sequence[int]) -> float:
        """Independent streams on every alive device (rates add)."""
        alive = self._check_alive(alive)
        return sum(1.0 / self.block_latency(i) for i in alive)

    # -- HA over all alive devices -----------------------------------------------

    def ha_throughput(self, alive: Sequence[int]) -> float:
        """Joint combined-model inference over the alive devices.

        Only defined when *all* devices are alive (the combined model needs
        every block's rows); each device computes its rows from the full
        activation, then the blocks are all-gathered.  With N devices the
        per-layer exchange is bounded by the largest block each device must
        receive: ``(N-1)/N`` of the activation in the symmetric case.
        """
        alive = self._check_alive(alive)
        if len(alive) != self.partition.num_blocks:
            return 0.0
        spec = self.partition.combined_spec(len(self.net.convs))
        costs = subnet_layer_costs(self.net, spec)
        layers = subnet_num_layers(self.net)

        device_times = []
        for i in alive:
            share = self.partition.block_slice(i).width / self.partition.max_width
            flops = sum(c.flops * share for c in costs)
            device_times.append(self.profiles[i].compute_time(flops, layers))

        comm_total = 0.0
        for cost in costs[:-1]:
            # Each device must receive every other block: (N-1)/N of the layer.
            other = cost.activation_bytes * (self.partition.num_blocks - 1)
            comm_total += self.comm.transfer_time(other // self.partition.num_blocks)
        comm_total += self.comm.transfer_time(costs[-1].activation_bytes)
        return 1.0 / (max(device_times) + comm_total)

    # -- survivability ---------------------------------------------------------------

    def survivor_throughput(self, alive: Sequence[int]) -> float:
        """Best available throughput for an arbitrary alive set: HA when all
        devices are up, otherwise HT over the survivors (every block is
        standalone-certified in a Fluid-N model)."""
        alive = self._check_alive(alive)
        if not alive:
            return 0.0
        if len(alive) == self.partition.num_blocks:
            return max(self.ha_throughput(alive), self.ht_throughput(alive))
        return self.ht_throughput(alive)

    def reliability_profile(self) -> Dict[int, float]:
        """Worst-case throughput after ``k`` device failures, for each k.

        The worst case loses the fastest devices first.
        """
        n = self.partition.num_blocks
        rates = sorted(
            (1.0 / self.block_latency(i) for i in range(n)), reverse=True
        )
        profile: Dict[int, float] = {0: self.survivor_throughput(range(n))}
        for k in range(1, n + 1):
            profile[k] = sum(rates[k:])
        return profile

    def _check_alive(self, alive: Sequence[int]) -> List[int]:
        alive = sorted(set(alive))
        for i in alive:
            if not 0 <= i < self.partition.num_blocks:
                raise ValueError(f"device index {i} out of range")
        return alive
