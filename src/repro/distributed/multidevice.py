"""N-device generalisation of the Fluid scheme.

The paper evaluates two devices but states its training algorithm "is
applicable to any number" of sub-networks.  This module generalises the
width partition to ``N`` channel *blocks*, one per device:

* block ``k`` holds output-channel rows ``[b_k, b_{k+1})`` of every layer;
* a Fluid-N model certifies each block's slice standalone, so any single
  surviving device keeps serving;
* HT mode runs all alive blocks as independent streams (rates add);
* HA mode width-partitions the combined model over the alive devices with
  an all-gather per layer (the exchange grows with the block count).

:class:`MultiDeviceModel` is the analytical throughput mirror of
:class:`~repro.distributed.throughput.SystemThroughputModel`;
:class:`MultiDeviceRuntime` actually *executes* the N-device deployment on
the unified :class:`~repro.engine.engine.ExecutionEngine` (the block
partition itself lives in :mod:`repro.engine.graph`, shared with the
two-device master runtime).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.comm.latency_model import CommLatencyModel
from repro.device.cost import subnet_layer_costs, subnet_num_layers
from repro.device.emulated import EmulatedDevice
from repro.device.profiles import DeviceProfile
from repro.distributed.plan import DeploymentPlan, failed_plan, partitioned_plan, streams_plan
from repro.engine.endpoints import LocalEndpoint
from repro.engine.engine import EngineResult, ExecutionEngine
from repro.engine.graph import BlockPartition
from repro.slimmable.slim_net import SlimmableConvNet

__all__ = ["BlockPartition", "MultiDeviceModel", "MultiDeviceRuntime"]


class MultiDeviceModel:
    """Analytical throughput of an N-device Fluid deployment."""

    def __init__(
        self,
        net: SlimmableConvNet,
        profiles: Sequence[DeviceProfile],
        comm: CommLatencyModel,
        partition: BlockPartition,
    ) -> None:
        if len(profiles) != partition.num_blocks:
            raise ValueError(
                f"{len(profiles)} devices for {partition.num_blocks} blocks"
            )
        if partition.max_width != net.width_spec.max_width:
            raise ValueError("partition width does not match the network")
        self.net = net
        self.profiles = list(profiles)
        self.comm = comm
        self.partition = partition

    # -- standalone / HT -------------------------------------------------------

    def block_latency(self, device_index: int) -> float:
        """Per-image latency of device ``i`` running its own block."""
        spec = self.partition.block_spec(device_index, len(self.net.convs))
        flops = sum(c.flops for c in subnet_layer_costs(self.net, spec))
        return self.profiles[device_index].compute_time(
            flops, subnet_num_layers(self.net)
        )

    def ht_throughput(self, alive: Sequence[int]) -> float:
        """Independent streams on every alive device (rates add)."""
        alive = self._check_alive(alive)
        return sum(1.0 / self.block_latency(i) for i in alive)

    # -- HA over all alive devices -----------------------------------------------

    def ha_throughput(self, alive: Sequence[int]) -> float:
        """Joint combined-model inference over the alive devices.

        Only defined when *all* devices are alive (the combined model needs
        every block's rows); each device computes its rows from the full
        activation, then the blocks are all-gathered.  With N devices the
        per-layer exchange is bounded by the largest block each device must
        receive: ``(N-1)/N`` of the activation in the symmetric case.
        """
        alive = self._check_alive(alive)
        if len(alive) != self.partition.num_blocks:
            return 0.0
        spec = self.partition.combined_spec(len(self.net.convs))
        costs = subnet_layer_costs(self.net, spec)
        layers = subnet_num_layers(self.net)

        device_times = []
        for i in alive:
            share = self.partition.block_slice(i).width / self.partition.max_width
            flops = sum(c.flops * share for c in costs)
            device_times.append(self.profiles[i].compute_time(flops, layers))

        comm_total = 0.0
        for cost in costs[:-1]:
            # Each device must receive every other block: (N-1)/N of the layer.
            other = cost.activation_bytes * (self.partition.num_blocks - 1)
            comm_total += self.comm.transfer_time(other // self.partition.num_blocks)
        comm_total += self.comm.transfer_time(costs[-1].activation_bytes)
        return 1.0 / (max(device_times) + comm_total)

    # -- survivability ---------------------------------------------------------------

    def survivor_throughput(self, alive: Sequence[int]) -> float:
        """Best available throughput for an arbitrary alive set: HA when all
        devices are up, otherwise HT over the survivors (every block is
        standalone-certified in a Fluid-N model)."""
        alive = self._check_alive(alive)
        if not alive:
            return 0.0
        if len(alive) == self.partition.num_blocks:
            return max(self.ha_throughput(alive), self.ht_throughput(alive))
        return self.ht_throughput(alive)

    def reliability_profile(self) -> Dict[int, float]:
        """Worst-case throughput after ``k`` device failures, for each k.

        The worst case loses the fastest devices first.
        """
        n = self.partition.num_blocks
        rates = sorted(
            (1.0 / self.block_latency(i) for i in range(n)), reverse=True
        )
        profile: Dict[int, float] = {0: self.survivor_throughput(range(n))}
        for k in range(1, n + 1):
            profile[k] = sum(rates[k:])
        return profile

    def _check_alive(self, alive: Sequence[int]) -> List[int]:
        alive = sorted(set(alive))
        for i in alive:
            if not 0 <= i < self.partition.num_blocks:
                raise ValueError(f"device index {i} out of range")
        return alive


class MultiDeviceRuntime:
    """Executes the N-device Fluid deployment on the unified engine.

    One in-process :class:`LocalEndpoint` per block, all aliasing the same
    weight container (the paper's weight sharing).  Plans mirror the
    survivor logic of :class:`MultiDeviceModel`: HA when everyone is alive,
    HT over the survivors otherwise.
    """

    def __init__(
        self,
        net: SlimmableConvNet,
        profiles: Sequence[DeviceProfile],
        partition: BlockPartition,
        *,
        comm_model: Optional[CommLatencyModel] = None,
        compiled: bool = False,
    ) -> None:
        if len(profiles) != partition.num_blocks:
            raise ValueError(
                f"{len(profiles)} devices for {partition.num_blocks} blocks"
            )
        if partition.max_width != net.width_spec.max_width:
            raise ValueError("partition width does not match the network")
        self.net = net
        self.partition = partition
        self.devices: List[EmulatedDevice] = [
            EmulatedDevice(profile, net) for profile in profiles
        ]
        self.device_names = [f"dev{i}" for i in range(partition.num_blocks)]
        num_convs = len(net.convs)
        specs = {
            spec.name: spec
            for spec in (
                partition.block_spec(i, num_convs)
                for i in range(partition.num_blocks)
            )
        }
        combined = partition.combined_spec(num_convs)
        specs[combined.name] = combined
        self._combined = combined
        self.engine = ExecutionEngine(
            {
                name: LocalEndpoint(name, device)
                for name, device in zip(self.device_names, self.devices)
            },
            net.width_spec,
            partition=partition,
            comm_model=comm_model,
            extra_specs=specs,
            compiled=compiled,
        )

    # -- planning --------------------------------------------------------------

    def alive_indices(self) -> List[int]:
        return [i for i, d in enumerate(self.devices) if d.alive]

    def plan(self, alive: Optional[Sequence[int]] = None) -> DeploymentPlan:
        """HA when every block is up, HT over the survivors otherwise."""
        alive = sorted(set(self.alive_indices() if alive is None else alive))
        for i in alive:
            if not 0 <= i < self.partition.num_blocks:
                raise ValueError(f"device index {i} out of range")
        if not alive:
            return failed_plan("no devices alive")
        if len(alive) == self.partition.num_blocks:
            return partitioned_plan(self.device_names, self._combined.name)
        return streams_plan(
            [(self.device_names[i], f"block{i}") for i in alive]
        )

    # -- execution -------------------------------------------------------------

    def run_ha(self, x: np.ndarray) -> np.ndarray:
        """Jointly compute the combined model over all blocks."""
        result = self.engine.execute(
            partitioned_plan(self.device_names, self._combined.name), x
        )
        return result.logits

    def run_ht(
        self,
        x: np.ndarray,
        *,
        streams: Optional[Mapping[str, np.ndarray]] = None,
        alive: Optional[Sequence[int]] = None,
    ) -> EngineResult:
        """Independent per-block streams over the alive devices."""
        alive = sorted(set(self.alive_indices() if alive is None else alive))
        plan = streams_plan([(self.device_names[i], f"block{i}") for i in alive])
        return self.engine.execute(plan, x, streams=streams)

    def serve(self, x: np.ndarray) -> EngineResult:
        """Serve one batch under the current best plan."""
        return self.engine.execute(self.plan(), x)

    @property
    def ledger(self):
        return self.engine.ledger
