"""Distributed inference: partitioning, protocol, modes, throughput model."""

from repro.distributed.cluster import LocalCluster, WorkerProcess
from repro.distributed.layer_partition import LayerCut, LayerPartitionModel
from repro.distributed.master import MasterRuntime, WorkerUnavailable
from repro.distributed.multidevice import (
    BlockPartition,
    MultiDeviceModel,
    MultiDeviceRuntime,
)
from repro.distributed.modes import ALL_SCENARIOS, ExecutionMode, Scenario
from repro.distributed.partition import MASTER, ROLES, WORKER, WidthPartition
from repro.distributed.partitioned import (
    conv_block_half,
    fc_partial,
    partitioned_forward_reference,
)
from repro.distributed.plan import (
    Assignment,
    DeploymentPlan,
    failed_plan,
    ha_plan,
    ht_plan,
    partitioned_plan,
    solo_plan,
    streams_plan,
)
from repro.engine.ledger import EmulatedTimeLedger
from repro.distributed.throughput import SystemThroughputModel, ThroughputBreakdown
from repro.distributed.worker import WorkerServer

__all__ = [
    "ExecutionMode",
    "Scenario",
    "ALL_SCENARIOS",
    "WidthPartition",
    "MASTER",
    "WORKER",
    "ROLES",
    "conv_block_half",
    "fc_partial",
    "partitioned_forward_reference",
    "Assignment",
    "DeploymentPlan",
    "failed_plan",
    "solo_plan",
    "ht_plan",
    "ha_plan",
    "streams_plan",
    "partitioned_plan",
    "SystemThroughputModel",
    "LayerCut",
    "LayerPartitionModel",
    "BlockPartition",
    "MultiDeviceModel",
    "MultiDeviceRuntime",
    "ThroughputBreakdown",
    "MasterRuntime",
    "WorkerServer",
    "WorkerUnavailable",
    "EmulatedTimeLedger",
    "LocalCluster",
    "WorkerProcess",
]
