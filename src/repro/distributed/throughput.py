"""Analytical system throughput model.

Replicates the paper's methodology: "To simplify the runtime scenario and
avoid network variance, we measured the communication latency offline.  The
total throughput of the system can be calculated with the sum of
computation and communication latency."

* Solo / standalone: ``T = 1 / t_compute(device, subnet)``.
* High-Accuracy (width-partitioned): the devices work in lock-step on the
  same image, so ``T = 1 / (max(t_master, t_worker) + t_comm)`` where
  ``t_comm`` is the per-layer half-activation exchange plus the partial
  logit gather.
* High-Throughput: independent streams, ``T = T_master + T_worker``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.comm.latency_model import CommLatencyModel
from repro.device.cost import partitioned_device_costs, subnet_flops, subnet_num_layers
from repro.device.profiles import DeviceProfile
from repro.distributed.partition import MASTER, WORKER, WidthPartition
from repro.distributed.plan import DeploymentPlan
from repro.distributed.modes import ExecutionMode
from repro.slimmable.slim_net import SlimmableConvNet
from repro.slimmable.spec import SubNetSpec


@dataclass(frozen=True)
class ThroughputBreakdown:
    """Per-image latency components and resulting system throughput."""

    mode: str
    compute_master_s: float
    compute_worker_s: float
    comm_s: float
    throughput_ips: float

    @property
    def latency_s(self) -> float:
        if self.throughput_ips == 0:
            return float("inf")
        return 1.0 / self.throughput_ips


class SystemThroughputModel:
    """Computes Fig. 2-style throughput numbers for any deployment."""

    def __init__(
        self,
        net: SlimmableConvNet,
        master: DeviceProfile,
        worker: DeviceProfile,
        comm: CommLatencyModel,
        partition: Optional[WidthPartition] = None,
    ) -> None:
        self.net = net
        self.profiles: Dict[str, DeviceProfile] = {MASTER: master, WORKER: worker}
        self.comm = comm
        self.partition = partition or WidthPartition.at_spec_split(net.width_spec)

    # -- primitives ----------------------------------------------------------

    def standalone_latency(self, role: str, spec: SubNetSpec) -> float:
        """Per-image compute latency of a standalone sub-network on a device."""
        profile = self.profiles[role]
        return profile.compute_time(
            subnet_flops(self.net, spec), subnet_num_layers(self.net)
        )

    def standalone_throughput(self, role: str, spec: SubNetSpec) -> ThroughputBreakdown:
        t = self.standalone_latency(role, spec)
        return ThroughputBreakdown(
            mode="solo",
            compute_master_s=t if role == MASTER else 0.0,
            compute_worker_s=t if role == WORKER else 0.0,
            comm_s=0.0,
            throughput_ips=1.0 / t,
        )

    def ha_throughput(self, spec: SubNetSpec) -> ThroughputBreakdown:
        """Width-partitioned joint inference of a combined sub-network."""
        master_costs, worker_costs, exchanges = partitioned_device_costs(
            self.net, spec, self.partition.split
        )
        layers = subnet_num_layers(self.net)
        t_m = self.profiles[MASTER].compute_time(sum(c.flops for c in master_costs), layers)
        t_w = self.profiles[WORKER].compute_time(sum(c.flops for c in worker_costs), layers)
        t_comm = self.comm.total_time(exchanges)
        total = max(t_m, t_w) + t_comm
        return ThroughputBreakdown(
            mode="HA",
            compute_master_s=t_m,
            compute_worker_s=t_w,
            comm_s=t_comm,
            throughput_ips=1.0 / total,
        )

    def ht_throughput(
        self, master_spec: SubNetSpec, worker_spec: SubNetSpec
    ) -> ThroughputBreakdown:
        """Independent parallel streams (Fluid DyDNN High-Throughput mode)."""
        t_m = self.standalone_latency(MASTER, master_spec)
        t_w = self.standalone_latency(WORKER, worker_spec)
        return ThroughputBreakdown(
            mode="HT",
            compute_master_s=t_m,
            compute_worker_s=t_w,
            comm_s=0.0,
            throughput_ips=1.0 / t_m + 1.0 / t_w,
        )

    # -- plan evaluation -----------------------------------------------------------

    def evaluate_plan(self, plan: DeploymentPlan) -> ThroughputBreakdown:
        """Throughput of an arbitrary deployment plan."""
        if plan.mode == ExecutionMode.FAILED:
            return ThroughputBreakdown("failed", 0.0, 0.0, 0.0, 0.0)
        if plan.mode == ExecutionMode.HIGH_ACCURACY:
            return self.ha_throughput(self.net.width_spec.find(plan.combined_subnet))
        if plan.mode == ExecutionMode.HIGH_THROUGHPUT:
            by_device = {a.device: a.subnet for a in plan.assignments}
            return self.ht_throughput(
                self.net.width_spec.find(by_device[MASTER]),
                self.net.width_spec.find(by_device[WORKER]),
            )
        # SOLO
        (assignment,) = plan.assignments
        return self.standalone_throughput(
            assignment.device, self.net.width_spec.find(assignment.subnet)
        )
