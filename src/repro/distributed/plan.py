"""Deployment plans: what each device runs right now."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.distributed.modes import ExecutionMode


@dataclass(frozen=True)
class Assignment:
    """One device's job under a plan."""

    device: str
    subnet: str
    role: str  # "standalone" | "partition_lower" | "partition_upper"

    VALID_ROLES = ("standalone", "partition_lower", "partition_upper")

    def __post_init__(self) -> None:
        if self.role not in self.VALID_ROLES:
            raise ValueError(f"unknown assignment role {self.role!r}")


@dataclass(frozen=True)
class DeploymentPlan:
    """The runtime's current answer to "who runs what, and how"."""

    mode: ExecutionMode
    assignments: Tuple[Assignment, ...] = ()
    combined_subnet: Optional[str] = None  # the jointly-produced model in HA mode
    reason: str = ""

    def __post_init__(self) -> None:
        devices = [a.device for a in self.assignments]
        if len(devices) != len(set(devices)):
            raise ValueError("a device may hold only one assignment per plan")
        if self.mode == ExecutionMode.HIGH_ACCURACY and self.combined_subnet is None:
            raise ValueError("HA plans must name the combined sub-network")
        if self.mode == ExecutionMode.FAILED and self.assignments:
            raise ValueError("failed plans cannot carry assignments")

    def assignment_for(self, device: str) -> Optional[Assignment]:
        for a in self.assignments:
            if a.device == device:
                return a
        return None

    def devices(self) -> List[str]:
        return [a.device for a in self.assignments]

    def describe(self) -> str:
        if self.mode == ExecutionMode.FAILED:
            return f"FAILED ({self.reason})" if self.reason else "FAILED"
        parts = [f"{a.device}:{a.subnet}[{a.role}]" for a in self.assignments]
        combined = f" -> {self.combined_subnet}" if self.combined_subnet else ""
        return f"{self.mode.value} {' + '.join(parts)}{combined}"


def failed_plan(reason: str) -> DeploymentPlan:
    return DeploymentPlan(mode=ExecutionMode.FAILED, reason=reason)


def solo_plan(device: str, subnet: str) -> DeploymentPlan:
    return DeploymentPlan(
        mode=ExecutionMode.SOLO,
        assignments=(Assignment(device, subnet, "standalone"),),
        reason=f"only {device} alive",
    )


def streams_plan(streams: Sequence[Tuple[str, str]]) -> DeploymentPlan:
    """HT over any number of devices: ``streams`` is ``[(device, subnet), ...]``."""
    if not streams:
        raise ValueError("streams_plan needs at least one (device, subnet) pair")
    return DeploymentPlan(
        mode=ExecutionMode.HIGH_THROUGHPUT,
        assignments=tuple(
            Assignment(device, subnet, "standalone") for device, subnet in streams
        ),
        reason="independent sub-networks on parallel input streams",
    )


def partitioned_plan(devices: Sequence[str], combined_subnet: str) -> DeploymentPlan:
    """HA over any number of devices, in channel-block order.

    The first device owns the lowest channel block (and the classifier
    bias); the rest own successive upper blocks.
    """
    if len(devices) < 2:
        raise ValueError("partitioned execution needs at least two devices")
    roles = ["partition_lower"] + ["partition_upper"] * (len(devices) - 1)
    return DeploymentPlan(
        mode=ExecutionMode.HIGH_ACCURACY,
        assignments=tuple(
            Assignment(device, combined_subnet, role)
            for device, role in zip(devices, roles)
        ),
        combined_subnet=combined_subnet,
        reason="width-partitioned joint inference",
    )


def ht_plan(master_subnet: str, worker_subnet: str) -> DeploymentPlan:
    return streams_plan((("master", master_subnet), ("worker", worker_subnet)))


def ha_plan(combined_subnet: str) -> DeploymentPlan:
    return partitioned_plan(("master", "worker"), combined_subnet)
