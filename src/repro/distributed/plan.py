"""Deployment plans: what each device runs right now."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.distributed.modes import ExecutionMode


@dataclass(frozen=True)
class Assignment:
    """One device's job under a plan."""

    device: str
    subnet: str
    role: str  # "standalone" | "partition_lower" | "partition_upper"

    VALID_ROLES = ("standalone", "partition_lower", "partition_upper")

    def __post_init__(self) -> None:
        if self.role not in self.VALID_ROLES:
            raise ValueError(f"unknown assignment role {self.role!r}")


@dataclass(frozen=True)
class DeploymentPlan:
    """The runtime's current answer to "who runs what, and how"."""

    mode: ExecutionMode
    assignments: Tuple[Assignment, ...] = ()
    combined_subnet: Optional[str] = None  # the jointly-produced model in HA mode
    reason: str = ""

    def __post_init__(self) -> None:
        devices = [a.device for a in self.assignments]
        if len(devices) != len(set(devices)):
            raise ValueError("a device may hold only one assignment per plan")
        if self.mode == ExecutionMode.HIGH_ACCURACY and self.combined_subnet is None:
            raise ValueError("HA plans must name the combined sub-network")
        if self.mode == ExecutionMode.FAILED and self.assignments:
            raise ValueError("failed plans cannot carry assignments")

    def assignment_for(self, device: str) -> Optional[Assignment]:
        for a in self.assignments:
            if a.device == device:
                return a
        return None

    def devices(self) -> List[str]:
        return [a.device for a in self.assignments]

    def describe(self) -> str:
        if self.mode == ExecutionMode.FAILED:
            return f"FAILED ({self.reason})" if self.reason else "FAILED"
        parts = [f"{a.device}:{a.subnet}[{a.role}]" for a in self.assignments]
        combined = f" -> {self.combined_subnet}" if self.combined_subnet else ""
        return f"{self.mode.value} {' + '.join(parts)}{combined}"


def failed_plan(reason: str) -> DeploymentPlan:
    return DeploymentPlan(mode=ExecutionMode.FAILED, reason=reason)


def solo_plan(device: str, subnet: str) -> DeploymentPlan:
    return DeploymentPlan(
        mode=ExecutionMode.SOLO,
        assignments=(Assignment(device, subnet, "standalone"),),
        reason=f"only {device} alive",
    )


def ht_plan(master_subnet: str, worker_subnet: str) -> DeploymentPlan:
    return DeploymentPlan(
        mode=ExecutionMode.HIGH_THROUGHPUT,
        assignments=(
            Assignment("master", master_subnet, "standalone"),
            Assignment("worker", worker_subnet, "standalone"),
        ),
        reason="independent sub-networks on parallel input streams",
    )


def ha_plan(combined_subnet: str) -> DeploymentPlan:
    return DeploymentPlan(
        mode=ExecutionMode.HIGH_ACCURACY,
        assignments=(
            Assignment("master", combined_subnet, "partition_lower"),
            Assignment("worker", combined_subnet, "partition_upper"),
        ),
        combined_subnet=combined_subnet,
        reason="width-partitioned joint inference",
    )
