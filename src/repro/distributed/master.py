"""Master-side runtime: drives the worker, computes its own halves.

The Master is the paper's decision-maker: it partitions work, detects
worker failure (transport errors / ping timeouts) and is the place the
adaptation policy plugs into.  It accounts emulated time (device compute
plus offline-measured comm costs) so live runs report paper-style
throughput numbers alongside wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.comm.latency_model import CommLatencyModel
from repro.comm.message import Message, MessageKind
from repro.comm.transport import Transport, TransportError
from repro.device.cost import partitioned_device_costs
from repro.device.emulated import DeviceFailed, EmulatedDevice
from repro.distributed.partitioned import (
    conv_block_half,
    fc_partial,
    feature_slice_for_block,
    flatten_channel_block,
)
from repro.slimmable.spec import ChannelSlice, SubNetSpec
from repro.utils.logging import get_logger


class WorkerUnavailable(RuntimeError):
    """Raised when the worker cannot be reached (the failure signal)."""


@dataclass
class EmulatedTimeLedger:
    """Accumulates emulated compute/communication seconds for reporting."""

    compute_s: float = 0.0
    comm_s: float = 0.0
    images: int = 0

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s

    def throughput_ips(self) -> float:
        return self.images / self.total_s if self.total_s > 0 else 0.0


class MasterRuntime:
    """Runs distributed inference against one worker transport."""

    def __init__(
        self,
        device: EmulatedDevice,
        transport: Optional[Transport],
        *,
        partition_split: int,
        comm_model: Optional[CommLatencyModel] = None,
        request_timeout: float = 10.0,
    ) -> None:
        self.device = device
        self.transport = transport
        self.split = partition_split
        self.comm_model = comm_model or CommLatencyModel()
        self.request_timeout = request_timeout
        self.ledger = EmulatedTimeLedger()
        self.logger = get_logger("master")

    # -- worker plumbing -----------------------------------------------------

    def worker_attached(self) -> bool:
        return self.transport is not None and not self.transport.closed

    def ping_worker(self, timeout: float = 1.0) -> bool:
        """Heartbeat; False means the worker is to be treated as dead."""
        if not self.worker_attached():
            return False
        try:
            self.transport.send(Message(MessageKind.PING))
            reply = self.transport.recv(timeout=timeout)
        except TransportError:
            return False
        return reply.kind == MessageKind.PONG

    def _request(self, message: Message) -> Message:
        if not self.worker_attached():
            raise WorkerUnavailable("no worker transport")
        try:
            self.transport.send(message)
            reply = self.transport.recv(timeout=self.request_timeout)
        except TransportError as exc:
            raise WorkerUnavailable(str(exc)) from exc
        if reply.kind == MessageKind.ERROR:
            raise WorkerUnavailable(f"worker error: {reply.fields.get('reason')}")
        self._account_comm(message, reply)
        return reply

    def _account_comm(self, request: Message, reply: Message) -> None:
        nbytes = max(
            sum(a.nbytes for a in request.arrays.values()),
            sum(a.nbytes for a in reply.arrays.values()),
        )
        self.ledger.comm_s += self.comm_model.transfer_time(int(nbytes))

    # -- standalone / HT ------------------------------------------------------

    def run_local(self, spec: SubNetSpec, x: np.ndarray) -> np.ndarray:
        """Standalone inference on the master device."""
        logits = self.device.execute_subnet(spec, x)
        self.ledger.compute_s += self.device.estimated_latency(spec) * x.shape[0]
        self.ledger.images += x.shape[0]
        return logits

    def run_remote(self, spec: SubNetSpec, x: np.ndarray) -> np.ndarray:
        """Standalone inference on the worker device."""
        reply = self._request(
            Message(
                MessageKind.RUN_SUBNET,
                fields={"spec": spec.name},
                arrays={"x": x.astype(np.float32)},
            )
        )
        self.ledger.compute_s += float(reply.fields.get("compute_s", 0.0))
        self.ledger.images += x.shape[0]
        return reply.arrays["logits"].astype(np.float64)

    def run_ht(
        self,
        master_spec: SubNetSpec,
        worker_spec: SubNetSpec,
        x_master: np.ndarray,
        x_worker: np.ndarray,
    ) -> tuple:
        """High-Throughput mode: both devices on independent input streams.

        Emulated time: the streams run in parallel, so elapsed time is the
        max of the two sides; the ledger records it that way.
        """
        before_compute = self.ledger.compute_s
        logits_w = self.run_remote(worker_spec, x_worker)
        worker_s = self.ledger.compute_s - before_compute
        logits_m = self.device.execute_subnet(master_spec, x_master)
        master_s = self.device.estimated_latency(master_spec) * x_master.shape[0]
        # Replace sequential accounting with parallel max().
        self.ledger.compute_s = before_compute + max(worker_s, master_s)
        self.ledger.images += x_master.shape[0]
        return logits_m, logits_w

    # -- HA (width-partitioned) -------------------------------------------------

    def run_ha(self, spec: SubNetSpec, x: np.ndarray) -> np.ndarray:
        """High-Accuracy mode: jointly compute the combined model on ``x``.

        Drives the per-layer protocol: each round ships the master's half of
        the previous activation, receives the worker's half of the current
        one, and computes the master's half locally.  Numerically identical
        to single-device execution of ``spec``.
        """
        if not spec.is_lower():
            raise ValueError("HA mode requires a combined (lower-anchored) sub-network")
        net = self.device.net
        lower = ChannelSlice(0, self.split)
        master_costs, _, _ = partitioned_device_costs(net, spec, self.split)

        current = x
        in_slice: Optional[ChannelSlice] = None
        master_half: Optional[np.ndarray] = None
        for layer, out_slice in enumerate(spec.conv_slices):
            if layer == 0:
                request = Message(
                    MessageKind.PARTIAL_FORWARD,
                    fields={"op": "layer", "layer": 0, "spec": spec.name},
                    arrays={"input": x.astype(np.float32)},
                )
            else:
                request = Message(
                    MessageKind.PARTIAL_FORWARD,
                    fields={"op": "layer", "layer": layer, "spec": spec.name},
                    arrays={"master_half": master_half.astype(np.float32)},
                )
            master_half = conv_block_half(net, layer, current, lower, in_slice)
            self.device.busy_time_s += self.device.profile.compute_time(
                master_costs[layer].flops * x.shape[0], x.shape[0]
            )
            self.ledger.compute_s += self.device.profile.compute_time(
                master_costs[layer].flops, 1
            ) * x.shape[0]
            reply = self._request(request)
            worker_half = reply.arrays["half"].astype(np.float64)
            current = np.concatenate([master_half, worker_half], axis=1)
            in_slice = out_slice

        feats_m = flatten_channel_block(current[:, : self.split])
        logits_m = fc_partial(
            net, feats_m, feature_slice_for_block(net, lower), include_bias=True
        )
        self.ledger.compute_s += self.device.profile.compute_time(
            master_costs[-1].flops, 1
        ) * x.shape[0]
        reply = self._request(
            Message(
                MessageKind.PARTIAL_FORWARD,
                fields={"op": "fc", "spec": spec.name},
            )
        )
        logits = logits_m + reply.arrays["partial_logits"].astype(np.float64)
        self.ledger.images += x.shape[0]
        return logits

    # -- teardown -------------------------------------------------------------------

    def shutdown_worker(self) -> None:
        if self.worker_attached():
            try:
                self.transport.send(Message(MessageKind.SHUTDOWN))
            except TransportError:
                pass
            self.transport.close()

    def crash_worker(self) -> None:
        """Test hook: order the worker to simulate a power failure."""
        if self.worker_attached():
            try:
                self.transport.send(Message(MessageKind.CRASH))
            except TransportError:
                pass
