"""Master-side runtime: the two-device facade over the execution engine.

The Master is the paper's decision-maker: it holds the local (master)
device plus one worker transport, builds the corresponding two-endpoint
:class:`~repro.engine.engine.ExecutionEngine`, and exposes the historical
``run_local`` / ``run_remote`` / ``run_ht`` / ``run_ha`` entry points as
thin plan dispatches.  All mode logic — partitioned rounds, parallel
streams, failure signalling, emulated-time accounting — lives in
:mod:`repro.engine`; this module only names the two devices.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.comm.latency_model import CommLatencyModel
from repro.comm.transport import Transport
from repro.device.emulated import EmulatedDevice
from repro.distributed.modes import ExecutionMode
from repro.distributed.partition import MASTER, WORKER
from repro.distributed.plan import DeploymentPlan, ha_plan, ht_plan, solo_plan
from repro.engine.endpoints import EndpointUnavailable, LocalEndpoint, TransportEndpoint
from repro.engine.engine import EngineResult, ExecutionEngine
from repro.engine.graph import BlockPartition
from repro.engine.ledger import EmulatedTimeLedger
from repro.slimmable.spec import SubNetSpec
from repro.utils.logging import get_logger

# Backwards-compatible alias: the worker being unreachable is the engine's
# endpoint-unavailable signal.
WorkerUnavailable = EndpointUnavailable


class MasterRuntime:
    """Runs distributed inference against one worker transport."""

    def __init__(
        self,
        device: EmulatedDevice,
        transport: Optional[Transport],
        *,
        partition_split: int,
        comm_model: Optional[CommLatencyModel] = None,
        request_timeout: float = 10.0,
        compiled: bool = False,
    ) -> None:
        self.device = device
        self.split = partition_split
        self.comm_model = comm_model or CommLatencyModel()
        self.request_timeout = request_timeout
        self.logger = get_logger("master")
        self._worker = TransportEndpoint(
            WORKER, transport, request_timeout=request_timeout
        )
        self.engine = ExecutionEngine(
            {MASTER: LocalEndpoint(MASTER, device), WORKER: self._worker},
            device.net.width_spec,
            partition=BlockPartition.two_way(
                partition_split, device.net.width_spec.max_width
            ),
            comm_model=self.comm_model,
            compiled=compiled,
        )

    @property
    def ledger(self) -> EmulatedTimeLedger:
        return self.engine.ledger

    @property
    def transport(self) -> Optional[Transport]:
        """The worker's transport; assigning swaps the endpoint's link too."""
        return self._worker.transport

    @transport.setter
    def transport(self, transport: Optional[Transport]) -> None:
        self._worker.transport = transport

    # -- worker plumbing -----------------------------------------------------

    def worker_attached(self) -> bool:
        return self._worker.available

    def ping_worker(self, timeout: float = 1.0) -> bool:
        """Heartbeat; False means the worker is to be treated as dead."""
        return self._worker.ping(timeout=timeout)

    # -- plan execution --------------------------------------------------------

    def execute_plan(self, plan: DeploymentPlan, x: np.ndarray) -> EngineResult:
        """Run an arbitrary deployment plan on one batch."""
        return self.engine.execute(plan, x)

    def _register(self, *specs: SubNetSpec) -> None:
        # Callers may hand in spec objects outside the width family; make
        # sure the engine resolves their names back to the exact objects.
        for spec in specs:
            self.engine.extra_specs[spec.name] = spec

    def run_local(self, spec: SubNetSpec, x: np.ndarray) -> np.ndarray:
        """Standalone inference on the master device."""
        self._register(spec)
        return self.engine.execute(solo_plan(MASTER, spec.name), x).logits

    def run_remote(self, spec: SubNetSpec, x: np.ndarray) -> np.ndarray:
        """Standalone inference on the worker device."""
        self._register(spec)
        return self.engine.execute(solo_plan(WORKER, spec.name), x).logits

    def run_ht(
        self,
        master_spec: SubNetSpec,
        worker_spec: SubNetSpec,
        x_master: np.ndarray,
        x_worker: np.ndarray,
    ) -> tuple:
        """High-Throughput mode: both devices on independent input streams."""
        self._register(master_spec, worker_spec)
        result = self.engine.execute(
            ht_plan(master_spec.name, worker_spec.name),
            streams={MASTER: x_master, WORKER: x_worker},
        )
        return result.streams[MASTER], result.streams[WORKER]

    def run_ha(self, spec: SubNetSpec, x: np.ndarray) -> np.ndarray:
        """High-Accuracy mode: jointly compute the combined model on ``x``.

        Numerically identical to single-device execution of ``spec`` up to
        the wire-dtype casts.
        """
        self._register(spec)
        return self.engine.execute(ha_plan(spec.name), x).logits

    # -- teardown -------------------------------------------------------------------

    def shutdown_worker(self) -> None:
        self._worker.shutdown()

    def crash_worker(self) -> None:
        """Test hook: order the worker to simulate a power failure."""
        self._worker.crash()
