"""Exact width-partitioned forward computation (High-Accuracy mode).

Each device computes *its rows* of every layer from the *full* input
activation; halves are then exchanged to reassemble the full activation for
the next layer.  Because convolution output channels are independent given
the full input, the reassembled result is bit-identical to single-device
execution — asserted by integration tests.

These are stateless kernels over a net's weights; the protocol layers
(:mod:`repro.distributed.master` / ``worker``) drive them across a
transport, and :func:`partitioned_forward_reference` composes them locally
for correctness checks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.slimmable.slim_net import SlimmableConvNet
from repro.slimmable.spec import ChannelSlice, SubNetSpec


def conv_block_half(
    net: SlimmableConvNet,
    layer_index: int,
    x_full: np.ndarray,
    out_slice: ChannelSlice,
    in_slice: Optional[ChannelSlice] = None,
) -> np.ndarray:
    """One device's half of conv block ``layer_index`` (conv+ReLU+pool).

    Args:
        x_full: the full input activation of this layer (both halves).
        out_slice: the output-channel rows this device owns.
        in_slice: the input-channel range of the active combined model
            (defaults to all channels of ``x_full``).
    """
    conv = net.convs[layer_index]
    if in_slice is None:
        in_slice = ChannelSlice(0, x_full.shape[1])
    if x_full.shape[1] != in_slice.width:
        raise ValueError(
            f"layer {layer_index}: input has {x_full.shape[1]} channels, "
            f"in_slice {in_slice} expects {in_slice.width}"
        )
    if layer_index == 0:
        weight = conv.weight.data[out_slice.as_slice(), : x_full.shape[1]]
    else:
        weight = conv.weight.data[out_slice.as_slice(), in_slice.as_slice()]
    bias = conv.bias.data[out_slice.as_slice()]
    x_full, weight, bias = F.cast_compute(False, x_full, weight, bias)
    y, _ = F.conv2d_forward(x_full, weight, bias, conv.stride, conv.padding)
    y, _ = F.relu_forward(y, need_mask=False)
    if layer_index in net.pools:
        pool = net.pools[layer_index]
        y, _ = F.maxpool2d_forward(y, pool.kernel_size, pool.stride, need_indices=False)
    return y


def fc_partial(
    net: SlimmableConvNet,
    features: np.ndarray,
    feature_slice: ChannelSlice,
    include_bias: bool,
) -> np.ndarray:
    """Partial logits from one device's slice of the flattened features."""
    if features.ndim != 2 or features.shape[1] != feature_slice.width:
        raise ValueError(
            f"features shape {features.shape} does not match slice {feature_slice}"
        )
    weight = net.classifier.weight.data[:, feature_slice.as_slice()]
    features, weight, bias = F.cast_compute(
        False, features, weight, net.classifier.bias.data
    )
    logits = features @ weight.T
    if include_bias:
        logits = logits + bias
    return logits


def flatten_channel_block(activation: np.ndarray) -> np.ndarray:
    """Flatten a (N, C_block, H, W) half-activation to (N, C_block*H*W)."""
    return activation.reshape(activation.shape[0], -1)


def feature_slice_for_block(
    net: SlimmableConvNet, channel_slice: ChannelSlice
) -> ChannelSlice:
    """Classifier feature columns corresponding to a channel block."""
    return net.feature_slice_for(channel_slice)


def partitioned_forward_reference(
    net: SlimmableConvNet,
    spec: SubNetSpec,
    split: int,
    x: np.ndarray,
) -> Tuple[np.ndarray, List[int]]:
    """Single-process reference of the two-device HA computation.

    Returns ``(logits, exchanged_bytes_per_step)`` so tests can check both
    numerical equivalence with the monolithic forward and agreement with the
    cost model's exchange accounting.  Exchange bytes use the itemsize the
    halves actually take on the device boundary (the policy wire dtype via
    :func:`~repro.comm.wire.cast_for_wire`) — not a hardcoded float32 — so
    the accounting stays honest under a full-precision wire policy.
    """
    from repro.comm.wire import wire_dtype

    if not spec.is_lower():
        raise ValueError("HA partitioning applies to combined (lower-anchored) specs")
    lower = ChannelSlice(0, split)
    itemsize = wire_dtype().itemsize
    exchanged: List[int] = []
    current = x
    in_slice: Optional[ChannelSlice] = None
    for i, out_slice in enumerate(spec.conv_slices):
        upper = ChannelSlice(split, out_slice.stop)
        half_m = conv_block_half(net, i, current, lower, in_slice)
        half_w = conv_block_half(net, i, current, upper, in_slice)
        current = np.concatenate([half_m, half_w], axis=1)
        bigger = max(half_m[0].size, half_w[0].size)
        exchanged.append(bigger * itemsize * x.shape[0])
        in_slice = out_slice

    feats_m = flatten_channel_block(current[:, :split])
    feats_w = flatten_channel_block(current[:, split:])
    slice_m = feature_slice_for_block(net, lower)
    slice_w = feature_slice_for_block(net, ChannelSlice(split, spec.last_slice.stop))
    logits = fc_partial(net, feats_m, slice_m, include_bias=True) + fc_partial(
        net, feats_w, slice_w, include_bias=False
    )
    exchanged.append(logits.shape[1] * itemsize * x.shape[0])
    return logits, exchanged
