"""Typed messages of the master/worker protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

import numpy as np

from repro.comm.wire import decode_frame, encode_frame


class MessageKind:
    """Protocol message kinds (string constants on the wire)."""

    PING = "ping"
    PONG = "pong"
    RUN_SUBNET = "run_subnet"          # standalone inference on a named sub-network
    RUN_PARTS = "run_parts"            # one micro-batch flush (rows via shm ring)
    PARTIAL_FORWARD = "partial_forward"  # one partitioned layer step (HA mode)
    PARTITION_ROUND = "partition_round"  # one compiled-plan round (delta halo HA)
    RESULT = "result"
    ERROR = "error"
    SHUTDOWN = "shutdown"
    CRASH = "crash"                     # test hook: simulate a power failure

    ALL = (
        PING,
        PONG,
        RUN_SUBNET,
        RUN_PARTS,
        PARTIAL_FORWARD,
        PARTITION_ROUND,
        RESULT,
        ERROR,
        SHUTDOWN,
        CRASH,
    )


@dataclass
class Message:
    """One protocol message: a kind, JSON-safe fields, and named arrays."""

    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in MessageKind.ALL:
            raise ValueError(f"unknown message kind {self.kind!r}")

    def encode(self) -> bytes:
        return encode_frame(self.arrays, {"kind": self.kind, "fields": self.fields})

    @classmethod
    def decode(cls, frame: bytes) -> "Message":
        arrays, meta = decode_frame(frame)
        if not isinstance(meta, dict) or "kind" not in meta:
            raise ValueError("frame metadata missing message kind")
        return cls(kind=meta["kind"], fields=meta.get("fields", {}), arrays=arrays)


def error_message(reason: str) -> Message:
    return Message(MessageKind.ERROR, fields={"reason": reason})


def result_message(arrays: Dict[str, np.ndarray], **fields: Any) -> Message:
    return Message(MessageKind.RESULT, fields=fields, arrays=arrays)
