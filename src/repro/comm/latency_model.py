"""Offline-measured communication latency model.

The paper sidesteps network variance: "we measured the communication
latency offline.  The total throughput of the system can be calculated with
the sum of computation and communication latency."  This class is that
offline measurement, parameterised as a classic alpha-beta model:

    t(transfer) = base_latency + bytes / bandwidth

Defaults are calibrated so the paper's four per-image exchanges (three
pooled conv activations plus the partial logits) cost ~6.6 ms, the gap
between its lone-50%-model and distributed-full-model operating points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable


@dataclass(frozen=True)
class CommLatencyModel:
    """Alpha-beta cost of one transfer over the device link."""

    base_latency_s: float = 1.4448e-3
    bandwidth_bytes_per_s: float = 12.5e6  # 100 Mbit/s

    def __post_init__(self) -> None:
        if self.base_latency_s < 0:
            raise ValueError("base_latency_s must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time(self, nbytes: int) -> float:
        """Seconds for one transfer of ``nbytes`` (full-duplex exchange of
        equal halves costs the same as the larger one-way transfer)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.base_latency_s + nbytes / self.bandwidth_bytes_per_s

    def total_time(self, transfers: Iterable[int]) -> float:
        return sum(self.transfer_time(n) for n in transfers)

    def scaled_bandwidth(self, factor: float) -> "CommLatencyModel":
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(self, bandwidth_bytes_per_s=self.bandwidth_bytes_per_s * factor)

    def scaled_latency(self, factor: float) -> "CommLatencyModel":
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return replace(self, base_latency_s=self.base_latency_s * factor)
