"""Communication substrate: wire codec, protocol messages, transports."""

from repro.comm.latency_model import CommLatencyModel
from repro.comm.message import Message, MessageKind, error_message, result_message
from repro.comm.tcp import TcpListener, TcpTransport, connect
from repro.comm.transport import (
    InProcChannel,
    Transport,
    TransportClosed,
    TransportError,
)
from repro.comm.wire import WireError, decode_frame, encode_frame, frame_payload_bytes

__all__ = [
    "encode_frame",
    "decode_frame",
    "frame_payload_bytes",
    "WireError",
    "Message",
    "MessageKind",
    "error_message",
    "result_message",
    "Transport",
    "TransportError",
    "TransportClosed",
    "InProcChannel",
    "TcpTransport",
    "TcpListener",
    "connect",
    "CommLatencyModel",
]
