"""Communication substrate: wire codec, protocol messages, transports."""

from repro.comm.latency_model import CommLatencyModel
from repro.comm.message import Message, MessageKind, error_message, result_message
from repro.comm.tcp import TcpListener, TcpTransport, connect
from repro.comm.transport import (
    InProcChannel,
    Transport,
    TransportClosed,
    TransportError,
)
from repro.comm.wire import (
    WireError,
    cast_for_wire,
    decode_frame,
    encode_frame,
    frame_payload_bytes,
    wire_dtype,
)

__all__ = [
    "encode_frame",
    "decode_frame",
    "frame_payload_bytes",
    "cast_for_wire",
    "wire_dtype",
    "WireError",
    "Message",
    "MessageKind",
    "error_message",
    "result_message",
    "Transport",
    "TransportError",
    "TransportClosed",
    "InProcChannel",
    "TcpTransport",
    "TcpListener",
    "connect",
    "CommLatencyModel",
]
