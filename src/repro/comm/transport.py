"""Transport interface and the in-process implementation.

A transport moves whole frames between two endpoints.  The TCP transport
(:mod:`repro.comm.tcp`) is the real thing used by the multi-process demo;
:class:`InProcChannel` pairs two endpoints through queues for fast,
deterministic integration tests.
"""

from __future__ import annotations

import queue
from typing import Optional

from repro.comm.message import Message


class TransportError(RuntimeError):
    """Raised when the peer is gone or the frame cannot be delivered."""


class TransportClosed(TransportError):
    """Raised on send/recv after close (the 'device is dead' signal)."""


class Transport:
    """Bidirectional, message-oriented channel."""

    def send(self, message: Message) -> None:
        raise NotImplementedError

    def recv(self, timeout: Optional[float] = None) -> Message:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError


class _InProcEndpoint(Transport):
    """One side of an in-process channel."""

    def __init__(self, outbox: "queue.Queue", inbox: "queue.Queue", peer_state: dict) -> None:
        self._outbox = outbox
        self._inbox = inbox
        self._state = peer_state
        self._closed = False

    def send(self, message: Message) -> None:
        if self._closed:
            raise TransportClosed("endpoint closed")
        if self._state["peer_closed"]:
            raise TransportError("peer endpoint closed")
        # Round-trip through the codec so in-process tests exercise the
        # exact bytes the TCP transport would carry.
        self._outbox.put(message.encode())

    def recv(self, timeout: Optional[float] = None) -> Message:
        if self._closed:
            raise TransportClosed("endpoint closed")
        try:
            frame = self._inbox.get(timeout=timeout if timeout is not None else 5.0)
        except queue.Empty as exc:
            if self._state["peer_closed"]:
                raise TransportError("peer endpoint closed") from exc
            raise TransportError("recv timeout") from exc
        if frame is None:
            raise TransportError("peer endpoint closed")
        return Message.decode(frame)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._state["peer_closed"] = True
            self._outbox.put(None)

    @property
    def closed(self) -> bool:
        return self._closed


class InProcChannel:
    """A connected pair of in-process transports.

    ``a`` and ``b`` are symmetric endpoints; frames written on one side are
    read on the other, passing through the real wire codec.
    """

    def __init__(self) -> None:
        q_ab: "queue.Queue" = queue.Queue()
        q_ba: "queue.Queue" = queue.Queue()
        state = {"peer_closed": False}
        self.a = _InProcEndpoint(q_ab, q_ba, state)
        self.b = _InProcEndpoint(q_ba, q_ab, state)

    def close(self) -> None:
        self.a.close()
        self.b.close()
