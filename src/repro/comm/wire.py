"""Binary wire format for ndarray exchange (pickle-free).

Frame layout::

    MAGIC (4B)  |  header_len (4B, big-endian)  |  header (JSON, utf-8)  |  payload

The header describes each array's dtype/shape plus arbitrary JSON metadata;
the payload is the arrays' raw bytes concatenated in header order.  Arrays
are transmitted little-endian; dtypes are restricted to an allowlist so a
malicious peer cannot smuggle object arrays.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Tuple

import numpy as np

from repro.utils.dtypes import get_dtype_policy

MAGIC = b"FDN1"
_HEADER_STRUCT = struct.Struct(">I")
MAX_HEADER_BYTES = 1 << 20
MAX_PAYLOAD_BYTES = 1 << 30

_ALLOWED_DTYPES = {"float32", "float64", "int64", "int32", "uint8", "bool"}


class WireError(ValueError):
    """Raised on malformed frames."""


def encode_frame(arrays: Dict[str, np.ndarray], meta: Dict[str, Any]) -> bytes:
    """Serialise named arrays + JSON-safe metadata into one frame."""
    entries = []
    blobs = []
    for name, arr in arrays.items():
        arr = np.asarray(arr)
        shape = arr.shape  # before ascontiguousarray, which promotes 0-d to (1,)
        dtype = arr.dtype.name
        if dtype not in _ALLOWED_DTYPES:
            raise WireError(f"dtype {dtype!r} not allowed on the wire (array {name!r})")
        arr = np.ascontiguousarray(arr)
        blob = arr.astype(arr.dtype.newbyteorder("<"), copy=False).tobytes()
        entries.append({"name": name, "dtype": dtype, "shape": list(shape)})
        blobs.append(blob)
    header = json.dumps({"meta": meta, "arrays": entries}).encode("utf-8")
    if len(header) > MAX_HEADER_BYTES:
        raise WireError(f"header too large ({len(header)} bytes)")
    payload = b"".join(blobs)
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise WireError(f"payload too large ({len(payload)} bytes)")
    return MAGIC + _HEADER_STRUCT.pack(len(header)) + header + payload


def decode_frame(frame: bytes) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Parse a frame produced by :func:`encode_frame`."""
    if len(frame) < len(MAGIC) + _HEADER_STRUCT.size:
        raise WireError("frame truncated before header")
    if frame[: len(MAGIC)] != MAGIC:
        raise WireError("bad magic")
    (header_len,) = _HEADER_STRUCT.unpack_from(frame, len(MAGIC))
    if header_len > MAX_HEADER_BYTES:
        raise WireError(f"declared header length {header_len} exceeds limit")
    header_start = len(MAGIC) + _HEADER_STRUCT.size
    header_end = header_start + header_len
    if len(frame) < header_end:
        raise WireError("frame truncated inside header")
    try:
        header = json.loads(frame[header_start:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"bad header: {exc}") from exc
    if not isinstance(header, dict) or "arrays" not in header or "meta" not in header:
        raise WireError("header missing required keys")

    arrays: Dict[str, np.ndarray] = {}
    offset = header_end
    for entry in header["arrays"]:
        try:
            name, dtype, shape = entry["name"], entry["dtype"], tuple(entry["shape"])
        except (KeyError, TypeError) as exc:
            raise WireError(f"bad array entry: {entry!r}") from exc
        if dtype not in _ALLOWED_DTYPES:
            raise WireError(f"dtype {dtype!r} not allowed on the wire")
        if any((not isinstance(d, int)) or d < 0 for d in shape):
            raise WireError(f"bad shape {shape!r}")
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = count * np.dtype(dtype).itemsize
        if offset + nbytes > len(frame):
            raise WireError(f"frame truncated inside array {name!r}")
        flat = np.frombuffer(frame, dtype=np.dtype(dtype).newbyteorder("<"), count=count, offset=offset)
        arrays[name] = flat.reshape(shape).astype(dtype)
        offset += nbytes
    if offset != len(frame):
        raise WireError(f"{len(frame) - offset} trailing bytes after last array")
    return arrays, header["meta"]


def frame_payload_bytes(arrays: Dict[str, np.ndarray]) -> int:
    """Payload size an array dict would occupy on the wire."""
    return int(sum(np.ascontiguousarray(a).nbytes for a in arrays.values()))


def wire_dtype() -> np.dtype:
    """Dtype float activations take on the wire, per the global policy."""
    dtype = get_dtype_policy().wire_dtype
    if dtype.name not in _ALLOWED_DTYPES:
        raise WireError(f"policy wire dtype {dtype.name!r} not in the allowlist")
    return dtype


def cast_for_wire(arr: np.ndarray) -> np.ndarray:
    """Cast a float activation to the policy wire dtype (no copy if already there)."""
    return np.asarray(arr, dtype=wire_dtype())
