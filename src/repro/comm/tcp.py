"""TCP transport — the real sockets used between device processes.

The paper "used TCP to achieve data exchange" between its two Jetson
boards; our multi-process cluster does the same between OS processes.
Frames are length-prefixed (8-byte big-endian) on top of the wire codec.
"""

from __future__ import annotations

import socket
import struct
from typing import Optional, Tuple

from repro.comm.message import Message
from repro.comm.transport import Transport, TransportClosed, TransportError

_LEN_STRUCT = struct.Struct(">Q")
MAX_FRAME_BYTES = 1 << 30


class TcpTransport(Transport):
    """Message framing over a connected TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # AF_UNIX socketpairs (process-pool workers) have no Nagle
        self._closed = False

    def send(self, message: Message) -> None:
        if self._closed:
            raise TransportClosed("transport closed")
        frame = message.encode()
        try:
            self._sock.sendall(_LEN_STRUCT.pack(len(frame)) + frame)
        except OSError as exc:
            self.close()
            raise TransportError(f"send failed: {exc}") from exc

    def recv(self, timeout: Optional[float] = None) -> Message:
        if self._closed:
            raise TransportClosed("transport closed")
        self._sock.settimeout(timeout)
        try:
            header = self._recv_exact(_LEN_STRUCT.size)
            (length,) = _LEN_STRUCT.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise TransportError(f"peer declared oversized frame ({length} bytes)")
            frame = self._recv_exact(length)
        except socket.timeout as exc:
            raise TransportError("recv timeout") from exc
        except OSError as exc:
            self.close()
            raise TransportError(f"recv failed: {exc}") from exc
        return Message.decode(frame)

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                self.close()
                raise TransportError("connection closed by peer")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed


class TcpListener:
    """Server-side acceptor bound to ``127.0.0.1``."""

    def __init__(self, port: int = 0) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", port))
        self._sock.listen(4)

    @property
    def address(self) -> Tuple[str, int]:
        return self._sock.getsockname()

    def accept(self, timeout: Optional[float] = None) -> TcpTransport:
        self._sock.settimeout(timeout)
        try:
            conn, _ = self._sock.accept()
        except socket.timeout as exc:
            raise TransportError("accept timeout") from exc
        return TcpTransport(conn)

    def close(self) -> None:
        self._sock.close()


def connect(host: str, port: int, timeout: float = 5.0) -> TcpTransport:
    """Client-side connect with timeout."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise TransportError(f"connect to {host}:{port} failed: {exc}") from exc
    sock.settimeout(None)
    return TcpTransport(sock)
