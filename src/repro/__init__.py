"""Fluid Dynamic DNNs — reliable and adaptive distributed inference.

Reproduction of Xun et al., "Fluid Dynamic DNNs for Reliable and Adaptive
Distributed Inference on Edge Devices" (DATE 2024).  See DESIGN.md for the
system inventory and EXPERIMENTS.md for the paper-vs-measured record.

Subpackages
-----------
- :mod:`repro.nn` — from-scratch numpy DNN framework (PyTorch substitute).
- :mod:`repro.slimmable` — width-sliced layers with shared weight storage.
- :mod:`repro.models` — Static / Dynamic / Fluid DyDNN model definitions.
- :mod:`repro.training` — plain, incremental and nested-incremental trainers.
- :mod:`repro.data` — synthetic MNIST dataset and loaders.
- :mod:`repro.device` — edge-device emulation and latency cost models.
- :mod:`repro.comm` — wire format and TCP / in-process transports.
- :mod:`repro.distributed` — master/worker runtime, partitioning, modes.
- :mod:`repro.runtime` — failure monitoring and adaptation policy.
- :mod:`repro.experiments` — Fig. 2 harness and reporting.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
