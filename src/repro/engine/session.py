"""Concurrent shared-weight inference sessions.

An :class:`InferenceSession` is one serving handle over a model whose
parameters are *shared and read-only*: every call builds a fresh
non-recording :class:`~repro.nn.context.ForwardContext`, so per-request
activation state never touches the model.  K sessions over one weight
store run concurrently from K threads with **zero parameter copies** —
the exact property the slimmable design wants, since sub-network views
already alias one storage and cloning it per request would defeat the
paper's weight sharing.

Accepted model objects (duck-typed):

* a plain :class:`~repro.nn.module.Module` (e.g. ``Sequential``);
* a :class:`~repro.slimmable.slim_net.SubNetworkView` (binds its spec
  into each call's context — the container is never mutated);
* a :class:`~repro.slimmable.slim_net.SlimmableConvNet` or a model family
  (anything with ``.view()``/``.width_spec``) plus a ``subnet`` name.

Sessions must be created before concurrent serving begins: construction
flips the model to eval mode (idempotent), which is the only shared-state
write in the session lifecycle.

A session may carry a compiled :class:`~repro.nn.plan.InferencePlan` (or
a :class:`~repro.nn.plan.PlanLadder` of row-ceiling rungs — the two duck
as one): requests the plan accepts (matching shape, batch fits the arena,
active dtype policy matches the compiled dtype) run allocation-free
through the plan's workspace pool; everything else falls back to the
eager path.  Plan and eager outputs are bitwise identical for the exact
conv backends (``plan.exact``); the opt-in ``shifted-gemm`` backend is
allclose within :data:`~repro.nn.functional.SHIFTED_GEMM_TOLERANCE`.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

import numpy as np

from repro.nn.context import ForwardContext
from repro.nn.module import Module


class InferenceSession:
    """One serving handle: shared read-only weights, per-call contexts."""

    def __init__(self, model, subnet: Optional[str] = None, *, plan=None) -> None:
        self.model = self._resolve(model, subnet)
        self.plan = plan
        if plan is not None and subnet is not None and plan.width != subnet:
            raise ValueError(f"plan is compiled for {plan.width!r}, session serves {subnet!r}")
        # Eval mode is the one shared write; do it here, serially, so the
        # serve path is pure reads.
        self.model.train(False)

    @staticmethod
    def _resolve(model, subnet: Optional[str]) -> Module:
        if subnet is None:
            if not isinstance(model, Module):
                raise TypeError(
                    f"{type(model).__name__} needs a subnet name to build a view"
                )
            return model
        if hasattr(model, "width_spec") and hasattr(model, "view"):
            # SlimmableConvNet takes a SubNetSpec; model families take a name.
            if isinstance(model, Module):
                return model.view(model.width_spec.find(subnet))
            return model.view(subnet)
        raise TypeError(f"cannot build a {subnet!r} view from {type(model).__name__}")

    def run(self, x: np.ndarray) -> np.ndarray:
        """One inference request; reentrant and thread-safe."""
        if self.plan is not None and self.plan.accepts(x):
            return self.plan.run(x)
        return self.model.forward(x, ForwardContext(recording=False))

    def run_parts(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        """Serve a micro-batch given as per-request row groups.

        On the compiled-plan path the rows are scattered straight into the
        plan's input arena (no ``np.concatenate`` temporary); the eager
        fallback concatenates first — outputs are identical either way.
        """
        if self.plan is not None and self.plan.accepts_parts(parts):
            return self.plan.run_parts(parts)
        x = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
        return self.model.forward(x, ForwardContext(recording=False))

    def parameters(self):
        """The underlying shared parameters (for zero-copy assertions)."""
        return self.model.parameters()

    def __repr__(self) -> str:
        return f"InferenceSession({self.model!r})"


def serve_concurrent(
    sessions: Sequence[InferenceSession], batches: Sequence[np.ndarray]
) -> List[np.ndarray]:
    """Run ``sessions[i].run(batches[i])`` on one thread each; gather results.

    A convenience harness for tests and benchmarks: results come back in
    submission order regardless of thread scheduling, and any worker
    exception is re-raised in the caller.
    """
    if len(sessions) != len(batches):
        raise ValueError(f"{len(sessions)} sessions but {len(batches)} batches")
    results: List[Optional[np.ndarray]] = [None] * len(sessions)
    errors: List[BaseException] = []

    def _worker(index: int) -> None:
        try:
            results[index] = sessions[index].run(batches[index])
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    threads = [
        threading.Thread(target=_worker, args=(i,), name=f"session-{i}")
        for i in range(len(sessions))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results  # type: ignore[return-value]
