"""Concurrent shared-weight inference sessions.

An :class:`InferenceSession` is one serving handle over a model whose
parameters are *shared and read-only*: every call builds a fresh
non-recording :class:`~repro.nn.context.ForwardContext`, so per-request
activation state never touches the model.  K sessions over one weight
store run concurrently from K threads with **zero parameter copies** —
the exact property the slimmable design wants, since sub-network views
already alias one storage and cloning it per request would defeat the
paper's weight sharing.

Accepted model objects (duck-typed):

* a plain :class:`~repro.nn.module.Module` (e.g. ``Sequential``);
* a :class:`~repro.slimmable.slim_net.SubNetworkView` (binds its spec
  into each call's context — the container is never mutated);
* a :class:`~repro.slimmable.slim_net.SlimmableConvNet` or a model family
  (anything with ``.view()``/``.width_spec``) plus a ``subnet`` name.

Sessions must be created before concurrent serving begins: construction
flips the model to eval mode (idempotent), which is the only shared-state
write in the session lifecycle.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

import numpy as np

from repro.nn.context import ForwardContext
from repro.nn.module import Module


class InferenceSession:
    """One serving handle: shared read-only weights, per-call contexts."""

    def __init__(self, model, subnet: Optional[str] = None) -> None:
        self.model = self._resolve(model, subnet)
        # Eval mode is the one shared write; do it here, serially, so the
        # serve path is pure reads.
        self.model.train(False)

    @staticmethod
    def _resolve(model, subnet: Optional[str]) -> Module:
        if subnet is None:
            if not isinstance(model, Module):
                raise TypeError(
                    f"{type(model).__name__} needs a subnet name to build a view"
                )
            return model
        if hasattr(model, "width_spec") and hasattr(model, "view"):
            # SlimmableConvNet takes a SubNetSpec; model families take a name.
            if isinstance(model, Module):
                return model.view(model.width_spec.find(subnet))
            return model.view(subnet)
        raise TypeError(f"cannot build a {subnet!r} view from {type(model).__name__}")

    def run(self, x: np.ndarray) -> np.ndarray:
        """One inference request; reentrant and thread-safe."""
        return self.model.forward(x, ForwardContext(recording=False))

    def parameters(self):
        """The underlying shared parameters (for zero-copy assertions)."""
        return self.model.parameters()

    def __repr__(self) -> str:
        return f"InferenceSession({self.model!r})"


def serve_concurrent(
    sessions: Sequence[InferenceSession], batches: Sequence[np.ndarray]
) -> List[np.ndarray]:
    """Run ``sessions[i].run(batches[i])`` on one thread each; gather results.

    A convenience harness for tests and benchmarks: results come back in
    submission order regardless of thread scheduling, and any worker
    exception is re-raised in the caller.
    """
    if len(sessions) != len(batches):
        raise ValueError(f"{len(sessions)} sessions but {len(batches)} batches")
    results: List[Optional[np.ndarray]] = [None] * len(sessions)
    errors: List[BaseException] = []

    def _worker(index: int) -> None:
        try:
            results[index] = sessions[index].run(batches[index])
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    threads = [
        threading.Thread(target=_worker, args=(i,), name=f"session-{i}")
        for i in range(len(sessions))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results  # type: ignore[return-value]
