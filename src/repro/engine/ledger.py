"""Emulated-time accounting shared by every execution mode."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EmulatedTimeLedger:
    """Accumulates emulated compute/communication seconds for reporting."""

    compute_s: float = 0.0
    comm_s: float = 0.0
    images: int = 0

    @property
    def total_s(self) -> float:
        return self.compute_s + self.comm_s

    def throughput_ips(self) -> float:
        return self.images / self.total_s if self.total_s > 0 else 0.0

    def snapshot(self) -> "EmulatedTimeLedger":
        return EmulatedTimeLedger(self.compute_s, self.comm_s, self.images)

    def reset(self) -> None:
        self.compute_s = 0.0
        self.comm_s = 0.0
        self.images = 0
