"""Compile a :class:`DeploymentPlan` into a mode-agnostic execution graph.

Every plan — HA, HT, or solo, over any number of devices — lowers to the
same two-part shape:

* ``streams``: standalone sub-networks running in parallel on independent
  input streams (solo is the one-stream case, HT the N-stream case);
* ``rounds``: a lock-step width-partitioned program (HA), one round per
  conv layer plus a final partial-logit gather.

The engine (:mod:`repro.engine.engine`) interprets the graph without ever
branching on the plan's mode; all mode-specific knowledge lives here, in
one place, instead of being duplicated across per-mode runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.distributed.modes import ExecutionMode
from repro.distributed.plan import DeploymentPlan
from repro.slimmable.spec import ChannelSlice, SubNetSpec, uniform_spec


@dataclass(frozen=True)
class BlockPartition:
    """Channel blocks ``[boundaries[k], boundaries[k+1])`` per device."""

    boundaries: Tuple[int, ...]  # strictly increasing, starts at 0

    def __post_init__(self) -> None:
        b = self.boundaries
        if len(b) < 3:
            raise ValueError("need at least two blocks (three boundaries)")
        if b[0] != 0:
            raise ValueError("boundaries must start at 0")
        if list(b) != sorted(set(b)):
            raise ValueError("boundaries must be strictly increasing")

    @property
    def num_blocks(self) -> int:
        return len(self.boundaries) - 1

    @property
    def max_width(self) -> int:
        return self.boundaries[-1]

    def block_slice(self, index: int) -> ChannelSlice:
        if not 0 <= index < self.num_blocks:
            raise ValueError(f"block index {index} out of range")
        return ChannelSlice(self.boundaries[index], self.boundaries[index + 1])

    def block_spec(self, index: int, num_convs: int) -> SubNetSpec:
        s = self.block_slice(index)
        return uniform_spec(f"block{index}", s.start, s.stop, num_convs)

    def combined_spec(self, num_convs: int) -> SubNetSpec:
        return uniform_spec("combined", 0, self.max_width, num_convs)

    def clipped_block(self, index: int, width: int) -> ChannelSlice:
        """Block ``index`` restricted to a layer of ``width`` output channels."""
        start = min(self.boundaries[index], width)
        stop = min(self.boundaries[index + 1], width)
        if stop <= start:
            raise ValueError(
                f"block {index} [{self.boundaries[index]}, "
                f"{self.boundaries[index + 1]}) is empty at width {width}"
            )
        return ChannelSlice(start, stop)

    @classmethod
    def even(cls, num_blocks: int, max_width: int) -> "BlockPartition":
        if num_blocks <= 1:
            raise ValueError("need at least two blocks")
        if max_width % num_blocks:
            raise ValueError(f"{max_width} channels do not split into {num_blocks} blocks")
        step = max_width // num_blocks
        return cls(tuple(range(0, max_width + 1, step)))

    @classmethod
    def two_way(cls, split: int, max_width: int) -> "BlockPartition":
        """The paper's master/worker partition at ``split``."""
        return cls((0, split, max_width))


@dataclass(frozen=True)
class StreamOp:
    """One standalone sub-network on one device's input stream."""

    device: str
    subnet: str


@dataclass(frozen=True)
class PartitionLayerOp:
    """One lock-step round: each device computes its block of conv ``layer``."""

    layer: int
    in_slice: Optional[ChannelSlice]  # previous layer's combined slice (None at layer 0)
    blocks: Tuple[Tuple[str, ChannelSlice], ...]  # (device, out-channel block)


@dataclass(frozen=True)
class PartitionFcOp:
    """Final round: per-device partial logits, summed by the engine.

    Only the device owning the block that starts at channel 0 includes the
    classifier bias (so the sum counts it exactly once).
    """

    blocks: Tuple[Tuple[str, ChannelSlice], ...]  # last conv layer's blocks


@dataclass(frozen=True)
class ExecutionGraph:
    """A compiled plan: parallel streams followed by partitioned rounds."""

    mode: ExecutionMode
    subnet: Optional[str]  # combined subnet for partitioned programs
    streams: Tuple[StreamOp, ...] = ()
    rounds: Tuple[object, ...] = ()

    @property
    def devices(self) -> Tuple[str, ...]:
        if self.streams:
            return tuple(op.device for op in self.streams)
        if self.rounds:
            return tuple(device for device, _ in self.rounds[0].blocks)
        return ()

    @property
    def num_layer_rounds(self) -> int:
        """Conv rounds in the partitioned program (0 for stream graphs).

        The engine's delta halo exchange needs to know the final conv
        round: its halves are never shipped (the classifier reads only each
        device's own feature block).
        """
        return sum(1 for op in self.rounds if isinstance(op, PartitionLayerOp))

    @property
    def has_fc_round(self) -> bool:
        return any(isinstance(op, PartitionFcOp) for op in self.rounds)


def compile_plan(
    plan: DeploymentPlan, spec: Optional[SubNetSpec], partition: Optional[BlockPartition]
) -> ExecutionGraph:
    """Lower a deployment plan onto the stream/round graph.

    Args:
        plan: the deployment to execute.
        spec: the resolved combined sub-network (required for HA plans).
        partition: the channel-block partition (required for HA plans); its
            block count must equal the plan's device count.
    """
    if plan.mode is ExecutionMode.FAILED:
        return ExecutionGraph(mode=plan.mode, subnet=None)

    if plan.mode is not ExecutionMode.HIGH_ACCURACY:
        streams = tuple(StreamOp(a.device, a.subnet) for a in plan.assignments)
        if not streams:
            raise ValueError(f"plan {plan.describe()} has no assignments")
        return ExecutionGraph(mode=plan.mode, subnet=None, streams=streams)

    # High-Accuracy: width-partitioned lock-step program.
    if spec is None or partition is None:
        raise ValueError("HA compilation needs the combined spec and a partition")
    if not spec.is_lower():
        raise ValueError("HA mode requires a combined (lower-anchored) sub-network")
    devices = plan.devices()
    if len(devices) != partition.num_blocks:
        raise ValueError(
            f"plan assigns {len(devices)} devices but the partition has "
            f"{partition.num_blocks} blocks"
        )
    rounds = []
    in_slice: Optional[ChannelSlice] = None
    for layer, out_slice in enumerate(spec.conv_slices):
        blocks = tuple(
            (device, partition.clipped_block(k, out_slice.stop))
            for k, device in enumerate(devices)
        )
        rounds.append(PartitionLayerOp(layer=layer, in_slice=in_slice, blocks=blocks))
        in_slice = out_slice
    last = spec.last_slice
    rounds.append(
        PartitionFcOp(
            blocks=tuple(
                (device, partition.clipped_block(k, last.stop))
                for k, device in enumerate(devices)
            )
        )
    )
    return ExecutionGraph(mode=plan.mode, subnet=plan.combined_subnet, rounds=tuple(rounds))
