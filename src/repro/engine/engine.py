"""The N-device execution engine.

:class:`ExecutionEngine` owns a set of named :class:`Endpoint`\\ s, compiles
every :class:`~repro.distributed.plan.DeploymentPlan` to the stream/round
graph (:mod:`repro.engine.graph`), and interprets that graph uniformly —
the same loop serves solo, High-Throughput, and High-Accuracy deployments
over any number of devices, with endpoints that may be in-process devices
or remote workers behind a transport.

Emulated-time accounting reproduces the historical master runtime:

* parallel streams charge the ledger ``max`` of their compute times (they
  run concurrently) and every image served;
* partitioned rounds charge the ``max`` of the local per-layer compute
  plus the communication model's transfer time for every remote exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.comm.latency_model import CommLatencyModel
from repro.distributed.modes import ExecutionMode
from repro.distributed.plan import DeploymentPlan
from repro.engine.endpoints import Endpoint, EndpointUnavailable
from repro.engine.graph import (
    BlockPartition,
    ExecutionGraph,
    PartitionFcOp,
    PartitionLayerOp,
    compile_plan,
)
from repro.engine.ledger import EmulatedTimeLedger
from repro.slimmable.spec import SubNetSpec, WidthSpec
from repro.utils.logging import get_logger


@dataclass
class EngineResult:
    """Outcome of executing one plan on one batch (or batch set)."""

    mode: ExecutionMode
    streams: Dict[str, np.ndarray] = field(default_factory=dict)
    logits: Optional[np.ndarray] = None


class ExecutionEngine:
    """Runs deployment plans over named endpoints."""

    def __init__(
        self,
        endpoints: Mapping[str, Endpoint],
        width_spec: WidthSpec,
        *,
        partition: Optional[BlockPartition] = None,
        comm_model: Optional[CommLatencyModel] = None,
        ledger: Optional[EmulatedTimeLedger] = None,
        extra_specs: Optional[Mapping[str, SubNetSpec]] = None,
    ) -> None:
        self.endpoints: Dict[str, Endpoint] = dict(endpoints)
        self.width_spec = width_spec
        self.partition = partition
        self.comm_model = comm_model or CommLatencyModel()
        self.ledger = ledger or EmulatedTimeLedger()
        self.extra_specs: Dict[str, SubNetSpec] = dict(extra_specs or {})
        self.logger = get_logger("engine")

    # -- lookup ----------------------------------------------------------------

    def endpoint(self, device: str) -> Endpoint:
        try:
            return self.endpoints[device]
        except KeyError:
            raise EndpointUnavailable(f"no endpoint for device {device!r}") from None

    def resolve_spec(self, name: str) -> SubNetSpec:
        if name in self.extra_specs:
            return self.extra_specs[name]
        return self.width_spec.find(name)

    def ping(self, device: str, timeout: float = 1.0) -> bool:
        return self.endpoint(device).ping(timeout=timeout)

    def compile(self, plan: DeploymentPlan) -> ExecutionGraph:
        spec = None
        if plan.mode is ExecutionMode.HIGH_ACCURACY:
            spec = self.resolve_spec(plan.combined_subnet)
        return compile_plan(plan, spec, self.partition)

    # -- execution -------------------------------------------------------------

    def execute(
        self,
        plan: DeploymentPlan,
        x: Optional[np.ndarray] = None,
        *,
        streams: Optional[Mapping[str, np.ndarray]] = None,
    ) -> EngineResult:
        """Run ``plan`` on one batch.

        Args:
            plan: the deployment to execute.
            x: a single input batch.  Partitioned (HA) plans run it jointly;
                stream plans split it evenly across the assigned devices.
            streams: per-device input batches for stream plans (overrides
                the even split of ``x``).
        """
        graph = self.compile(plan)
        if graph.mode is ExecutionMode.FAILED:
            return EngineResult(mode=graph.mode)
        if graph.streams:
            return self._execute_streams(graph, x, streams)
        return self._execute_partitioned(graph, x)

    def _stream_inputs(
        self,
        graph: ExecutionGraph,
        x: Optional[np.ndarray],
        streams: Optional[Mapping[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        if streams is not None:
            missing = [op.device for op in graph.streams if op.device not in streams]
            if missing:
                raise ValueError(f"no input stream for devices {missing}")
            return {op.device: streams[op.device] for op in graph.streams}
        if x is None:
            raise ValueError("stream execution needs an input batch")
        k = len(graph.streams)
        chunk = x.shape[0] // k
        inputs = {}
        for i, op in enumerate(graph.streams):
            lo = i * chunk
            hi = lo + chunk if i < k - 1 else x.shape[0]
            inputs[op.device] = x[lo:hi]
        return inputs

    def _execute_streams(
        self,
        graph: ExecutionGraph,
        x: Optional[np.ndarray],
        streams: Optional[Mapping[str, np.ndarray]],
    ) -> EngineResult:
        inputs = self._stream_inputs(graph, x, streams)
        outputs: Dict[str, np.ndarray] = {}
        elapsed: List[float] = []
        for op in graph.streams:
            endpoint = self.endpoint(op.device)
            batch = inputs[op.device]
            reply = endpoint.run_subnet(self.resolve_spec(op.subnet), batch)
            outputs[op.device] = reply.arrays["logits"]
            elapsed.append(reply.compute_s)
            if reply.payload_bytes:
                self.ledger.comm_s += self.comm_model.transfer_time(reply.payload_bytes)
            self.ledger.images += batch.shape[0]
        # Streams run concurrently: elapsed emulated time is the slowest one.
        self.ledger.compute_s += max(elapsed)
        parts = [outputs[op.device] for op in graph.streams if outputs[op.device].size]
        logits = np.concatenate(parts, axis=0) if parts else None
        return EngineResult(mode=graph.mode, streams=outputs, logits=logits)

    def _execute_partitioned(self, graph: ExecutionGraph, x: Optional[np.ndarray]) -> EngineResult:
        if x is None:
            raise ValueError("partitioned execution needs an input batch")
        spec = self.resolve_spec(graph.subnet)
        devices = graph.devices
        boundaries = self.partition.boundaries
        for index, device in enumerate(devices):
            self.endpoint(device).begin_partition(spec, boundaries, index)

        current = x
        prev_blocks: Dict[str, Optional[object]] = {d: None for d in devices}
        for op in graph.rounds:
            if isinstance(op, PartitionLayerOp):
                halves = []
                round_compute = []
                for device, block in op.blocks:
                    reply = self.endpoint(device).partition_layer(
                        spec, op.layer, block, op.in_slice, current, prev_blocks[device]
                    )
                    halves.append(reply.arrays["half"])
                    round_compute.append(reply.compute_s)
                    if reply.payload_bytes:
                        self.ledger.comm_s += self.comm_model.transfer_time(
                            reply.payload_bytes
                        )
                    prev_blocks[device] = block
                self.ledger.compute_s += max(round_compute)
                current = np.concatenate(halves, axis=1)
            elif isinstance(op, PartitionFcOp):
                logits = None
                round_compute = []
                for device, block in op.blocks:
                    reply = self.endpoint(device).partition_fc(
                        spec, block, current, include_bias=(block.start == 0)
                    )
                    part = reply.arrays["partial_logits"]
                    logits = part if logits is None else logits + part
                    round_compute.append(reply.compute_s)
                    if reply.payload_bytes:
                        self.ledger.comm_s += self.comm_model.transfer_time(
                            reply.payload_bytes
                        )
                self.ledger.compute_s += max(round_compute)
            else:  # pragma: no cover - compile_plan only emits the two ops
                raise TypeError(f"unknown graph op {op!r}")
        self.ledger.images += x.shape[0]
        return EngineResult(mode=graph.mode, logits=logits)

    # -- teardown --------------------------------------------------------------

    def shutdown(self) -> None:
        for endpoint in self.endpoints.values():
            endpoint.shutdown()
