"""The N-device execution engine.

:class:`ExecutionEngine` owns a set of named :class:`Endpoint`\\ s, compiles
every :class:`~repro.distributed.plan.DeploymentPlan` to the stream/round
graph (:mod:`repro.engine.graph`), and interprets that graph uniformly —
the same loop serves solo, High-Throughput, and High-Accuracy deployments
over any number of devices, with endpoints that may be in-process devices
or remote workers behind a transport.

Dispatch is *overlapped*: every stream op and every partitioned round fans
out to all endpoints concurrently (one thread per endpoint) and gathers the
replies before accounting, so a slow remote worker no longer serialises the
whole round behind it.  Ledger updates happen after the gather, in graph
op order — emulated-time totals are bit-for-bit what the historical serial
loop produced.

With ``compiled=True`` the partitioned (HA) path runs each device's
:class:`~repro.engine.dist_plan.DevicePartitionPlan` instead of the eager
per-round kernels, and switches the exchange to *delta halos*: each round
ships only the peers' halves (every device already holds its own half in
its arena), and the final conv round ships nothing at all.  Results are
bitwise identical to the eager path at every width and dtype policy.

Emulated-time accounting reproduces the historical master runtime:

* parallel streams charge the ledger ``max`` of their compute times (they
  run concurrently) and every image served;
* partitioned rounds charge the ``max`` of the local per-layer compute
  plus the communication model's transfer time for every remote exchange.

Wall-clock facts land in a :class:`~repro.scheduler.telemetry.MetricsRegistry`
(``round.wall_s`` / ``round.compute_s`` histograms, ``round.comm_bytes``
counter, ``round.overlap`` EWMA); :meth:`ExecutionEngine.report` returns
the emulated and measured views side by side.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from queue import SimpleQueue
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.comm.latency_model import CommLatencyModel
from repro.comm.wire import wire_dtype
from repro.distributed.modes import ExecutionMode
from repro.distributed.plan import DeploymentPlan
from repro.engine.endpoints import Endpoint, EndpointReply, EndpointUnavailable
from repro.engine.graph import (
    BlockPartition,
    ExecutionGraph,
    PartitionFcOp,
    PartitionLayerOp,
    compile_plan,
)
from repro.engine.ledger import EmulatedTimeLedger
from repro.slimmable.spec import SubNetSpec, WidthSpec
from repro.utils.dtypes import dtype_policy, get_dtype_policy
from repro.utils.logging import get_logger


@dataclass
class EngineResult:
    """Outcome of executing one plan on one batch (or batch set)."""

    mode: ExecutionMode
    streams: Dict[str, np.ndarray] = field(default_factory=dict)
    logits: Optional[np.ndarray] = None


class _DispatchLane:
    """One persistent dispatch thread fed through a pair of SimpleQueues.

    Purpose-built replacement for a ThreadPoolExecutor: the engine issues a
    fixed small fan-out every round, and the executor's future machinery
    costs more than the queue handoff itself.  Each lane loops forever,
    reinstalling the caller's dtype policy per task (thread-scoped policy
    overrides would otherwise be invisible in the lane thread).
    """

    def __init__(self, name: str) -> None:
        self._inbox: SimpleQueue = SimpleQueue()
        self._outbox: SimpleQueue = SimpleQueue()
        self._thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        from repro.scheduler.telemetry import Timer  # deferred: package cycle

        while True:
            task = self._inbox.get()
            if task is None:
                return
            call, policy = task
            timer = Timer()
            try:
                with timer, dtype_policy(policy):
                    value = call()
            except BaseException as exc:  # collected and re-raised by the caller
                self._outbox.put((False, exc, timer.elapsed))
            else:
                self._outbox.put((True, value, timer.elapsed))

    def submit(self, call: Callable[[], "EndpointReply"], policy) -> None:
        self._inbox.put((call, policy))

    def collect(self) -> Tuple[bool, object, float]:
        return self._outbox.get()

    def stop(self) -> None:
        self._inbox.put(None)
        self._thread.join(timeout=1.0)


class ExecutionEngine:
    """Runs deployment plans over named endpoints."""

    def __init__(
        self,
        endpoints: Mapping[str, Endpoint],
        width_spec: WidthSpec,
        *,
        partition: Optional[BlockPartition] = None,
        comm_model: Optional[CommLatencyModel] = None,
        ledger: Optional[EmulatedTimeLedger] = None,
        extra_specs: Optional[Mapping[str, SubNetSpec]] = None,
        compiled: bool = False,
        metrics=None,  # MetricsRegistry; imported lazily (scheduler pkg cycle)
        tracer=None,   # repro.trace Tracer; engine-side round events (optional)
    ) -> None:
        self.endpoints: Dict[str, Endpoint] = dict(endpoints)
        self.width_spec = width_spec
        self.partition = partition
        self.comm_model = comm_model or CommLatencyModel()
        self.ledger = ledger or EmulatedTimeLedger()
        self.extra_specs: Dict[str, SubNetSpec] = dict(extra_specs or {})
        self.compiled = compiled
        if metrics is None:
            # Deferred: repro.scheduler's package init imports the runtime
            # facades, which import this module.
            from repro.scheduler.telemetry import MetricsRegistry

            metrics = MetricsRegistry()
        self.metrics = metrics
        # Optional request-lifecycle tracer: when set, every observed round
        # also lands as an "engine.round" trace event.  Callers serving one
        # request wrap the execute in ``tracer.scope(request_id)`` so the
        # thread-local binding joins the event to that request's timeline.
        self.tracer = tracer
        self.logger = get_logger("engine")
        #: Per-round exchanged activation bytes of the most recent
        #: partitioned execute (engine↔endpoint boundary, wire itemsize).
        self.last_exchange_bytes: List[int] = []
        self._lanes: List[_DispatchLane] = []
        self._wall_rounds_s = 0.0
        self._graph_cache: Dict[tuple, ExecutionGraph] = {}

    # -- lookup ----------------------------------------------------------------

    def endpoint(self, device: str) -> Endpoint:
        try:
            return self.endpoints[device]
        except KeyError:
            raise EndpointUnavailable(f"no endpoint for device {device!r}") from None

    def resolve_spec(self, name: str) -> SubNetSpec:
        if name in self.extra_specs:
            return self.extra_specs[name]
        return self.width_spec.find(name)

    def ping(self, device: str, timeout: float = 1.0) -> bool:
        return self.endpoint(device).ping(timeout=timeout)

    def compile(self, plan: DeploymentPlan) -> ExecutionGraph:
        spec = None
        if plan.mode is ExecutionMode.HIGH_ACCURACY:
            spec = self.resolve_spec(plan.combined_subnet)
        # Plans are frozen dataclasses, so identical deployments hit the
        # cache; id(spec) keys out a re-registered spec under the same name.
        key = (plan, id(spec))
        graph = self._graph_cache.get(key)
        if graph is None:
            if len(self._graph_cache) >= 256:
                self._graph_cache.clear()
            graph = compile_plan(plan, spec, self.partition)
            self._graph_cache[key] = graph
        return graph

    # -- overlapped dispatch ---------------------------------------------------

    def _lane_set(self, size: int) -> List[_DispatchLane]:
        while len(self._lanes) < size:
            self._lanes.append(_DispatchLane(f"engine-dispatch-{len(self._lanes)}"))
        return self._lanes[:size]

    def _dispatch(
        self, calls: Sequence[Callable[[], EndpointReply]]
    ) -> Tuple[List[EndpointReply], List[float], float]:
        """Run one round's endpoint calls concurrently; gather in call order.

        Returns ``(replies, per_call_seconds, round_wall_seconds)``.  The
        caller accounts the replies in graph op order afterwards, so the
        emulated ledger is independent of completion order.  The calling
        thread's dtype policy is reinstalled in every dispatch thread
        (thread-scoped overrides would otherwise be invisible there).
        """
        from repro.scheduler.telemetry import Timer  # deferred: package cycle

        if len(calls) == 1:
            with Timer() as timer:
                reply = calls[0]()
            return [reply], [timer.elapsed], timer.elapsed
        # The first call runs inline on the dispatching thread while the
        # rest overlap in lane threads — one less thread handoff per round,
        # and numpy releases the GIL inside the kernels either way.
        policy = get_dtype_policy()
        lanes = self._lane_set(len(calls) - 1)
        round_timer = Timer()
        round_timer.__enter__()
        for lane, call in zip(lanes, calls[1:]):
            lane.submit(call, policy)
        first_exc: Optional[BaseException] = None
        first: Tuple[Optional[EndpointReply], float] = (None, 0.0)
        first_timer = Timer()
        try:
            with first_timer:
                reply0 = calls[0]()
            first = (reply0, first_timer.elapsed)
        except BaseException as exc:
            first_exc = exc
        # Always drain every submitted lane — a leftover result would be
        # misattributed to the next round's dispatch.
        gathered = [lane.collect() for lane in lanes]
        round_timer.__exit__(None, None, None)
        wall = round_timer.elapsed
        if first_exc is not None:
            raise first_exc
        replies: List[EndpointReply] = [first[0]]
        spans: List[float] = [first[1]]
        for ok, value, span in gathered:
            if not ok:
                raise value
            replies.append(value)
            spans.append(span)
        return replies, spans, wall

    def _observe_round(
        self, kind: str, compute_s: float, comm_bytes: int, spans: List[float], wall: float
    ) -> None:
        m = self.metrics
        m.counter(f"{kind}.count").inc()
        if comm_bytes:
            m.counter(f"{kind}.comm_bytes").inc(int(comm_bytes))
        m.histogram(f"{kind}.compute_s").observe(max(compute_s, 0.0))
        m.histogram(f"{kind}.wall_s").observe(wall)
        if spans and wall > 0:
            # 1/k when the k calls ran back-to-back, →1 under perfect overlap.
            m.ewma(f"{kind}.overlap").observe(sum(spans) / (wall * len(spans)))
        self._wall_rounds_s += wall
        if self.tracer is not None:
            # EVENT_ENGINE_ROUND from repro.trace.tracer (literal here to
            # keep the trace package import out of the engine's hot path).
            self.tracer.emit_scoped(
                "engine.round",
                round=kind,
                wall_s=wall,
                compute_s=compute_s,
                comm_bytes=int(comm_bytes),
                calls=len(spans),
            )

    # -- execution -------------------------------------------------------------

    def execute(
        self,
        plan: DeploymentPlan,
        x: Optional[np.ndarray] = None,
        *,
        streams: Optional[Mapping[str, np.ndarray]] = None,
    ) -> EngineResult:
        """Run ``plan`` on one batch.

        Args:
            plan: the deployment to execute.
            x: a single input batch.  Partitioned (HA) plans run it jointly;
                stream plans split it evenly across the assigned devices.
            streams: per-device input batches for stream plans (overrides
                the even split of ``x``).
        """
        graph = self.compile(plan)
        if graph.mode is ExecutionMode.FAILED:
            return EngineResult(mode=graph.mode)
        if graph.streams:
            return self._execute_streams(graph, x, streams)
        return self._execute_partitioned(graph, x)

    def _stream_inputs(
        self,
        graph: ExecutionGraph,
        x: Optional[np.ndarray],
        streams: Optional[Mapping[str, np.ndarray]],
    ) -> Dict[str, np.ndarray]:
        if streams is not None:
            missing = [op.device for op in graph.streams if op.device not in streams]
            if missing:
                raise ValueError(f"no input stream for devices {missing}")
            return {op.device: streams[op.device] for op in graph.streams}
        if x is None:
            raise ValueError("stream execution needs an input batch")
        k = len(graph.streams)
        chunk = x.shape[0] // k
        inputs = {}
        for i, op in enumerate(graph.streams):
            lo = i * chunk
            hi = lo + chunk if i < k - 1 else x.shape[0]
            inputs[op.device] = x[lo:hi]
        return inputs

    def _execute_streams(
        self,
        graph: ExecutionGraph,
        x: Optional[np.ndarray],
        streams: Optional[Mapping[str, np.ndarray]],
    ) -> EngineResult:
        if not graph.streams:
            raise ValueError(
                f"graph for mode {graph.mode} has no stream ops to execute"
            )
        inputs = self._stream_inputs(graph, x, streams)
        calls = [
            (
                lambda endpoint=self.endpoint(op.device),
                spec=self.resolve_spec(op.subnet),
                batch=inputs[op.device]: endpoint.run_subnet(spec, batch)
            )
            for op in graph.streams
        ]
        replies, spans, wall = self._dispatch(calls)

        outputs: Dict[str, np.ndarray] = {}
        elapsed: List[float] = []
        for op, reply in zip(graph.streams, replies):
            outputs[op.device] = reply.arrays["logits"]
            elapsed.append(reply.compute_s)
            if reply.payload_bytes:
                self.ledger.comm_s += self.comm_model.transfer_time(reply.payload_bytes)
            self.ledger.images += inputs[op.device].shape[0]
        # Streams run concurrently: elapsed emulated time is the slowest one.
        self.ledger.compute_s += max(elapsed)
        self._observe_round("stream", max(elapsed), 0, spans, wall)
        parts = [outputs[op.device] for op in graph.streams if outputs[op.device].size]
        logits = np.concatenate(parts, axis=0) if parts else None
        return EngineResult(mode=graph.mode, streams=outputs, logits=logits)

    def _execute_partitioned(
        self, graph: ExecutionGraph, x: Optional[np.ndarray]
    ) -> EngineResult:
        if x is None:
            raise ValueError("partitioned execution needs an input batch")
        if not graph.has_fc_round:
            raise ValueError(
                "partitioned graph produces no logits: it has no PartitionFcOp "
                "(every HA program must end with the partial-logit gather)"
            )
        spec = self.resolve_spec(graph.subnet)
        self.last_exchange_bytes = []
        if self.compiled:
            return self._execute_partitioned_compiled(graph, spec, x)
        return self._execute_partitioned_eager(graph, spec, x)

    def _execute_partitioned_eager(
        self, graph: ExecutionGraph, spec: SubNetSpec, x: np.ndarray
    ) -> EngineResult:
        devices = graph.devices
        boundaries = self.partition.boundaries
        for index, device in enumerate(devices):
            self.endpoint(device).begin_partition(spec, boundaries, index)

        item = wire_dtype().itemsize
        current = x
        logits: Optional[np.ndarray] = None
        prev_blocks: Dict[str, Optional[object]] = {d: None for d in devices}
        for op in graph.rounds:
            if isinstance(op, PartitionLayerOp):
                calls = [
                    (
                        lambda endpoint=self.endpoint(device),
                        block=block,
                        full=current,
                        prev=prev_blocks[device]: endpoint.partition_layer(
                            spec, op.layer, block, op.in_slice, full, prev
                        )
                    )
                    for device, block in op.blocks
                ]
                replies, spans, wall = self._dispatch(calls)
                halves = []
                round_compute = []
                round_bytes = 0
                for (device, block), reply in zip(op.blocks, replies):
                    half = reply.arrays["half"]
                    halves.append(half)
                    round_compute.append(reply.compute_s)
                    if reply.payload_bytes:
                        self.ledger.comm_s += self.comm_model.transfer_time(
                            reply.payload_bytes
                        )
                    # Full previous activation broadcast out, own half back.
                    round_bytes += (current.size + half.size) * item
                    prev_blocks[device] = block
                self.ledger.compute_s += max(round_compute)
                current = np.concatenate(halves, axis=1)
                self.last_exchange_bytes.append(round_bytes)
                self._observe_round("round", max(round_compute), round_bytes, spans, wall)
            elif isinstance(op, PartitionFcOp):
                calls = [
                    (
                        lambda endpoint=self.endpoint(device),
                        block=block,
                        full=current,
                        bias=(block.start == 0): endpoint.partition_fc(
                            spec, block, full, include_bias=bias
                        )
                    )
                    for device, block in op.blocks
                ]
                replies, spans, wall = self._dispatch(calls)
                round_compute = []
                round_bytes = 0
                for (device, block), reply in zip(op.blocks, replies):
                    part = reply.arrays["partial_logits"]
                    logits = part if logits is None else logits + part
                    round_compute.append(reply.compute_s)
                    if reply.payload_bytes:
                        self.ledger.comm_s += self.comm_model.transfer_time(
                            reply.payload_bytes
                        )
                    round_bytes += (current.size + part.size) * item
                self.ledger.compute_s += max(round_compute)
                self.last_exchange_bytes.append(round_bytes)
                self._observe_round("round", max(round_compute), round_bytes, spans, wall)
            else:  # pragma: no cover - compile_plan only emits the two ops
                raise TypeError(f"unknown graph op {op!r}")
        self.ledger.images += x.shape[0]
        return EngineResult(mode=graph.mode, logits=logits)

    def _execute_partitioned_compiled(
        self, graph: ExecutionGraph, spec: SubNetSpec, x: np.ndarray
    ) -> EngineResult:
        devices = graph.devices
        boundaries = self.partition.boundaries
        rows = x.shape[0]
        for index, device in enumerate(devices):
            self.endpoint(device).begin_partition_plan(spec, boundaries, index, rows)

        item = wire_dtype().itemsize
        num_conv_rounds = graph.num_layer_rounds
        # device -> (block, half) produced in the previous round.
        halves: Dict[str, Optional[Tuple[object, np.ndarray]]] = {d: None for d in devices}
        logits: Optional[np.ndarray] = None
        for op in graph.rounds:
            if isinstance(op, PartitionLayerOp):
                # Delta halo exchange: the last conv round's halves are never
                # shipped — the classifier reads only each device's own block.
                need_half = op.layer < num_conv_rounds - 1
                calls = []
                sent_values = []
                for device, block in op.blocks:
                    endpoint = self.endpoint(device)
                    if op.layer == 0:
                        calls.append(
                            lambda endpoint=endpoint, need=need_half: endpoint.partition_round(
                                spec, 0, x=x, need_half=need
                            )
                        )
                        sent_values.append(x.size)
                    else:
                        peers = tuple(
                            halves[d] for d in devices if d != device and halves[d]
                        )
                        calls.append(
                            lambda endpoint=endpoint,
                            layer=op.layer,
                            peers=peers,
                            need=need_half: endpoint.partition_round(
                                spec, layer, peers=peers, need_half=need
                            )
                        )
                        sent_values.append(sum(h.size for _, h in peers))
                replies, spans, wall = self._dispatch(calls)
                round_compute = []
                round_bytes = 0
                for (device, block), reply, sent in zip(op.blocks, replies, sent_values):
                    half = reply.arrays.get("half")
                    halves[device] = (block, half) if half is not None else None
                    round_compute.append(reply.compute_s)
                    if reply.payload_bytes:
                        self.ledger.comm_s += self.comm_model.transfer_time(
                            reply.payload_bytes
                        )
                    round_bytes += (sent + (half.size if half is not None else 0)) * item
                self.ledger.compute_s += max(round_compute)
                self.last_exchange_bytes.append(round_bytes)
                self._observe_round("round", max(round_compute), round_bytes, spans, wall)
            elif isinstance(op, PartitionFcOp):
                calls = [
                    (
                        lambda endpoint=self.endpoint(device),
                        bias=(block.start == 0): endpoint.partition_fc_round(
                            spec, include_bias=bias
                        )
                    )
                    for device, block in op.blocks
                ]
                replies, spans, wall = self._dispatch(calls)
                round_compute = []
                round_bytes = 0
                for (device, block), reply in zip(op.blocks, replies):
                    part = reply.arrays["partial_logits"]
                    logits = part if logits is None else logits + part
                    round_compute.append(reply.compute_s)
                    if reply.payload_bytes:
                        self.ledger.comm_s += self.comm_model.transfer_time(
                            reply.payload_bytes
                        )
                    round_bytes += part.size * item
                self.ledger.compute_s += max(round_compute)
                self.last_exchange_bytes.append(round_bytes)
                self._observe_round("round", max(round_compute), round_bytes, spans, wall)
            else:  # pragma: no cover - compile_plan only emits the two ops
                raise TypeError(f"unknown graph op {op!r}")
        self.ledger.images += rows
        return EngineResult(mode=graph.mode, logits=logits)

    # -- reporting -------------------------------------------------------------

    def report(self) -> Dict[str, object]:
        """Emulated-time ledger and measured wall-clock telemetry, side by side.

        The emulated view is the device cost model's opinion of the run; the
        wall view is what this process actually measured per dispatched
        round.  ``overlap`` EWMAs read 1/k for serialised rounds over k
        endpoints and approach 1.0 under perfect overlap.
        """
        snapshot = self.metrics.snapshot()
        return {
            "compiled": self.compiled,
            "emulated": {
                "compute_s": self.ledger.compute_s,
                "comm_s": self.ledger.comm_s,
                "total_s": self.ledger.total_s,
                "images": self.ledger.images,
            },
            "wall": {
                "rounds_s": self._wall_rounds_s,
                "histograms": snapshot["histograms"],
                "overlap": snapshot["ewmas"],
            },
            "counters": snapshot["counters"],
        }

    # -- teardown --------------------------------------------------------------

    def shutdown(self) -> None:
        for lane in self._lanes:
            lane.stop()
        self._lanes = []
        for endpoint in self.endpoints.values():
            endpoint.shutdown()
