"""Unified N-device execution engine.

One engine runs every deployment plan — High-Accuracy, High-Throughput, or
solo — over any number of devices, with pluggable endpoints (in-process
emulated devices or remote workers behind a transport).  The two-device
master runtime (:mod:`repro.distributed.master`), the multi-process cluster
(:mod:`repro.distributed.cluster`), and the N-device runtime
(:mod:`repro.distributed.multidevice`) are all thin facades over this
package.
"""

# The distributed facades (master/multidevice/cluster) import this package;
# loading them first keeps the import order well-defined no matter which
# package a caller touches first.
import repro.distributed  # noqa: F401  (import-cycle anchor)

from repro.engine.endpoints import (
    Endpoint,
    EndpointReply,
    EndpointUnavailable,
    LocalEndpoint,
    TransportEndpoint,
)
from repro.engine.dist_plan import DevicePartitionPlan, PartitionPlanCompiler
from repro.engine.engine import EngineResult, ExecutionEngine
from repro.engine.session import InferenceSession, serve_concurrent
from repro.engine.graph import (
    BlockPartition,
    ExecutionGraph,
    PartitionFcOp,
    PartitionLayerOp,
    StreamOp,
    compile_plan,
)
from repro.engine.ledger import EmulatedTimeLedger

__all__ = [
    "ExecutionEngine",
    "EngineResult",
    "InferenceSession",
    "serve_concurrent",
    "Endpoint",
    "EndpointReply",
    "EndpointUnavailable",
    "LocalEndpoint",
    "TransportEndpoint",
    "BlockPartition",
    "ExecutionGraph",
    "StreamOp",
    "PartitionLayerOp",
    "PartitionFcOp",
    "compile_plan",
    "EmulatedTimeLedger",
    "DevicePartitionPlan",
    "PartitionPlanCompiler",
]
