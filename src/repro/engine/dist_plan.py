"""Compiled per-device plans for the width-partitioned (HA) path.

The eager HA round loop re-derives everything per round on every device:
``conv_block_half`` pads the full activation, allocates fresh im2col /
GEMM / activation temporaries, slices and casts its weight block — and the
engine re-broadcasts the *full* reassembled activation each round.  A
:class:`DevicePartitionPlan` compiles all of that once per
``(spec, partition, device index, batch rows, dtype)``:

* **packed weights** for exactly this device's channel block of every conv
  (and its feature columns of the classifier), via the shared
  :class:`~repro.nn.plan.PackedWeightCache` — keyed by the sliced block, so
  N devices over one weight store never pack the same block twice;
* **workspace arenas** that pre-size the layer activations *and* the
  boundary-exchange buffers: each layer's padded input arena spans the
  *combined* channel width, so a peer's half is absorbed by one strided
  copy into its channel rows — the arena *is* the halo-exchange buffer;
* **fused kernels** (``im2col_into`` / ``gemm_bias_relu`` /
  ``maxpool2d_into``) replacing the eager per-call path, with the same
  reduction orders — outputs are **bitwise identical** to
  ``conv_block_half`` / ``fc_partial`` at every width and dtype policy.

Delta halo exchange falls out of the layout: this device's own conv output
is pooled straight into the *next* layer's arena interior at its own
channel rows, so a round only needs the peers' halves (never its own back),
and the last conv round ships nothing at all — the classifier reads only
the device's own feature block.

One plan is private to one device loop (its run state is a checked-out
workspace), but many plans share one :class:`PackedWeightCache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.plan import PackedWeightCache, _interior
from repro.nn.workspace import BufferSpec, Workspace, WorkspacePool
from repro.slimmable.sliced_conv import SlicedConv2d
from repro.slimmable.sliced_linear import SlicedLinear
from repro.slimmable.spec import ChannelSlice, SubNetSpec
from repro.utils.dtypes import compute_dtype


@dataclass(frozen=True)
class _RoundStep:
    """Precompiled geometry of one partitioned conv round on one device."""

    layer: SlicedConv2d
    index: int                 # conv index
    in_slice: ChannelSlice     # full combined input range (packed-weight key)
    block: ChannelSlice        # this device's output rows at this layer
    kernel: Tuple[int, int]
    stride: int
    padding: int
    in_hw: Tuple[int, int]
    out_hw: Tuple[int, int]
    pool: Optional[Tuple[int, int, Tuple[int, int]]]
    src: str                   # padded full-width input arena of this layer
    cols: str
    gemm: str
    act: Optional[str]         # own-block NCHW staging (pool input / features)
    dst: Optional[str]         # next layer's arena (own rows) or feature buffer
    dst_padding: int
    dst_block: ChannelSlice    # own channel rows inside dst (this layer's block)


class _PartitionRun:
    """One in-flight partitioned batch: a checked-out workspace + row count."""

    def __init__(self, plan: "DevicePartitionPlan", workspace: Workspace, rows: int):
        self.plan = plan
        self.workspace = workspace
        self.rows = rows
        self.halves: Dict[int, np.ndarray] = {}  # layer -> own shipped half view


class DevicePartitionPlan:
    """One device's compiled program for a width-partitioned deployment."""

    def __init__(
        self,
        net,
        spec: SubNetSpec,
        boundaries: Tuple[int, ...],
        index: int,
        batch_rows: int,
        dtype: np.dtype,
        steps: List[_RoundStep],
        feature_slice: ChannelSlice,
        fc_block: ChannelSlice,
        buffers: List[BufferSpec],
        cache: PackedWeightCache,
    ) -> None:
        self.net = net
        self.spec = spec
        self.boundaries = boundaries
        self.index = index
        self.batch_rows = batch_rows
        self.dtype = dtype
        self.cache = cache
        self._steps = steps
        self._feature_slice = feature_slice
        self.fc_block = fc_block
        self.workspaces = WorkspacePool(buffers, prealloc=1)

    # -- compilation ----------------------------------------------------------

    @classmethod
    def compile(
        cls,
        net,
        spec: SubNetSpec,
        boundaries: Sequence[int],
        index: int,
        *,
        batch_rows: int,
        dtype: Optional[np.dtype] = None,
        cache: Optional[PackedWeightCache] = None,
    ) -> "DevicePartitionPlan":
        """Compile device ``index``'s per-round program for ``spec``.

        ``boundaries`` is the :class:`~repro.engine.graph.BlockPartition`
        channel geometry; every layer's block is clipped to the layer width
        exactly as :func:`~repro.engine.graph.compile_plan` does.
        """
        if batch_rows <= 0:
            raise ValueError("batch_rows must be positive")
        boundaries = tuple(int(b) for b in boundaries)
        if not 0 <= index < len(boundaries) - 1:
            raise ValueError(f"device index {index} out of range for {boundaries}")
        if not spec.is_lower():
            raise ValueError("partition plans apply to combined (lower-anchored) specs")
        dtype = np.dtype(dtype) if dtype is not None else compute_dtype(training=False)
        if cache is None:
            cache = PackedWeightCache()

        dt = dtype.name
        steps: List[_RoundStep] = []
        buffers: List[BufferSpec] = []
        size = net.image_size
        num = len(net.convs)
        prev_full: Optional[ChannelSlice] = None
        for i, (conv, out_sl) in enumerate(zip(net.convs, spec.conv_slices)):
            if not isinstance(conv, SlicedConv2d):
                raise TypeError(f"cannot compile layer {type(conv).__name__}")
            in_sl, out_sl = conv.resolve_slices(prev_full, out_sl)
            block = _clipped(boundaries, index, out_sl.stop)
            k, pad = conv.kernel_size, conv.padding
            out_h = F.conv_out_size(size, k, conv.stride, pad)
            pool_layer = net.pools.get(i)
            pool = None
            after = (out_h, out_h)
            if pool_layer is not None:
                ph = F.conv_out_size(out_h, pool_layer.kernel_size, pool_layer.stride, 0)
                pool = (pool_layer.kernel_size, pool_layer.stride, (ph, ph))
                after = (ph, ph)
            last = i == num - 1

            # Full-combined-width padded input arena: this layer's activation
            # AND its halo-exchange buffer in one allocation.
            src = f"in{i}"
            buffers.append(
                BufferSpec(
                    src,
                    (batch_rows, in_sl.width, size + 2 * pad, size + 2 * pad),
                    dt,
                    zeroed=pad > 0,
                )
            )
            gemm_rows = batch_rows * out_h * out_h
            buffers.append(BufferSpec(f"cols{i}", (gemm_rows, in_sl.width * k * k), dt))
            buffers.append(BufferSpec(f"gemm{i}", (gemm_rows, block.width), dt))
            act = f"act{i}" if (pool is not None or last) else None
            if act is not None:
                buffers.append(BufferSpec(act, (batch_rows, block.width, out_h, out_h), dt))
            if last:
                # Own feature block only: the classifier never needs the
                # peers' channels, which is why the last round ships no half.
                dst, dst_pad = "feat", 0
                buffers.append(
                    BufferSpec(dst, (batch_rows, block.width, after[0], after[1]), dt)
                )
                dst_block = ChannelSlice(0, block.width)
            else:
                dst = f"in{i + 1}"
                dst_pad = net.convs[i + 1].padding
                dst_block = block
            steps.append(
                _RoundStep(
                    layer=conv,
                    index=i,
                    in_slice=in_sl,
                    block=block,
                    kernel=(k, k),
                    stride=conv.stride,
                    padding=pad,
                    in_hw=(size, size),
                    out_hw=(out_h, out_h),
                    pool=pool,
                    src=src,
                    cols=f"cols{i}",
                    gemm=f"gemm{i}",
                    act=act,
                    dst=dst,
                    dst_padding=dst_pad,
                    dst_block=dst_block,
                )
            )
            size = after[0]
            prev_full = out_sl

        classifier = net.classifier
        if not isinstance(classifier, SlicedLinear):
            raise TypeError(f"cannot compile classifier {type(classifier).__name__}")
        fc_block = _clipped(boundaries, index, spec.last_slice.stop)
        feature_slice = classifier.resolve_feature_slice(net.feature_slice_for(fc_block))
        buffers.append(BufferSpec("logits", (batch_rows, classifier.out_features), dt))

        # Warm the packed cache at compile time so the first round already
        # runs the steady-state lock-free lookup.
        for step in steps:
            cache.conv_block(step.layer, step.in_slice, step.block, dtype)
        cache.linear_block(classifier, feature_slice, dtype)
        return cls(
            net, spec, boundaries, index, batch_rows, dtype, steps,
            feature_slice, fc_block, buffers, cache,
        )

    @property
    def num_rounds(self) -> int:
        return len(self._steps)

    def block_at(self, layer: int) -> ChannelSlice:
        return self._steps[layer].block

    # -- execution ------------------------------------------------------------

    def begin(self, rows: int) -> _PartitionRun:
        """Check a workspace out for one batch of ``rows`` images."""
        if not 0 < rows <= self.batch_rows:
            raise ValueError(
                f"{rows} rows outside this plan's 1..{self.batch_rows} arena"
            )
        return _PartitionRun(self, self.workspaces.acquire(), rows)

    def finish(self, run: _PartitionRun) -> None:
        run.halves.clear()
        self.workspaces.release(run.workspace)

    def scatter_input(self, run: _PartitionRun, x: np.ndarray) -> None:
        """Place the input batch into layer 0's padded arena interior."""
        first = self._steps[0]
        dst = _interior(run.workspace[first.src], run.rows, first.padding, first.in_hw)
        np.copyto(dst, x)  # casts to the plan dtype; borders stay zero

    def absorb(
        self, run: _PartitionRun, layer: int, block: ChannelSlice, half: np.ndarray
    ) -> None:
        """Copy a peer's previous-round half into this layer's arena rows."""
        step = self._steps[layer]
        interior = _interior(run.workspace[step.src], run.rows, step.padding, step.in_hw)
        np.copyto(interior[:, block.start : block.stop], half)

    def run_layer(self, run: _PartitionRun, layer: int) -> Optional[np.ndarray]:
        """One conv round: fused conv+ReLU(+pool) of this device's block.

        Returns the half to ship to peers — a zero-copy view of the next
        layer's arena interior — or ``None`` on the last conv round (the
        classifier needs only the locally-kept feature block).
        """
        step = self._steps[layer]
        ws = run.workspace
        n = run.rows
        out_h, out_w = step.out_hw
        gemm_rows = n * out_h * out_w
        cols = ws[step.cols][:gemm_rows]
        F.im2col_into(ws[step.src][:n], step.kernel, step.stride, cols)
        w_mat, bias = self.cache.conv_block(step.layer, step.in_slice, step.block, self.dtype)
        gemm = ws[step.gemm][:gemm_rows]
        F.gemm_bias_relu(cols, w_mat, bias, gemm)
        nchw = gemm.reshape(n, out_h, out_w, step.block.width).transpose(0, 3, 1, 2)

        last = step.dst == "feat"
        if step.pool is not None:
            act = ws[step.act][:n]
            np.copyto(act, nchw)
            pk, ps, pooled_hw = step.pool
            dst_interior = _interior(ws[step.dst], n, step.dst_padding, pooled_hw)
            own = dst_interior[:, step.dst_block.start : step.dst_block.stop]
            F.maxpool2d_into(act, pk, ps, own)
        else:
            dst_interior = _interior(ws[step.dst], n, step.dst_padding, step.out_hw)
            own = dst_interior[:, step.dst_block.start : step.dst_block.stop]
            np.copyto(own, nchw)
        if last:
            return None
        run.halves[layer] = own
        return own

    def run_fc(self, run: _PartitionRun, include_bias: bool) -> np.ndarray:
        """Partial logits over this device's own feature block."""
        ws = run.workspace
        n = run.rows
        features = ws["feat"][:n].reshape(n, -1)
        w, b = self.cache.linear_block(self.net.classifier, self._feature_slice, self.dtype)
        logits = ws["logits"][:n]
        np.dot(features, w.T, out=logits)
        if include_bias:
            logits += b
        return logits

    def __repr__(self) -> str:
        return (
            f"DevicePartitionPlan({self.spec.name}, blocks={self.boundaries}, "
            f"index={self.index}, rows={self.batch_rows}, dtype={self.dtype.name})"
        )


def _clipped(boundaries: Tuple[int, ...], index: int, width: int) -> ChannelSlice:
    """Block ``index`` clipped to ``width`` output channels (graph semantics)."""
    start = min(boundaries[index], width)
    stop = min(boundaries[index + 1], width)
    if stop <= start:
        raise ValueError(
            f"block {index} [{boundaries[index]}, {boundaries[index + 1]}) "
            f"is empty at width {width}"
        )
    return ChannelSlice(start, stop)


class PartitionPlanCompiler:
    """Compiles and memoises :class:`DevicePartitionPlan`\\ s for one net.

    One compiler lives behind each endpoint that serves partitioned rounds;
    plans are keyed by ``(spec, boundaries, index, rows, dtype)`` so a
    steady benchmark loop compiles exactly once.  All plans share one
    :class:`PackedWeightCache` (pass one in to share further, e.g. with the
    single-device plans over the same weight store).
    """

    def __init__(self, net, cache: Optional[PackedWeightCache] = None) -> None:
        self.net = net
        self.cache = cache if cache is not None else PackedWeightCache()
        self._plans: Dict[tuple, DevicePartitionPlan] = {}

    def plan_for(
        self,
        spec: SubNetSpec,
        boundaries: Sequence[int],
        index: int,
        rows: int,
        dtype: Optional[np.dtype] = None,
    ) -> DevicePartitionPlan:
        dtype = np.dtype(dtype) if dtype is not None else compute_dtype(training=False)
        key = (spec.name, tuple(boundaries), index, rows, dtype.str)
        plan = self._plans.get(key)
        if plan is None:
            plan = DevicePartitionPlan.compile(
                self.net, spec, boundaries, index,
                batch_rows=rows, dtype=dtype, cache=self.cache,
            )
            self._plans[key] = plan
        return plan

    def __len__(self) -> int:
        return len(self._plans)
