"""Pluggable execution endpoints: where a device's compute actually runs.

An :class:`Endpoint` answers the engine's three requests — standalone
sub-network inference, one width-partitioned layer round, and the final
partial-logit gather — plus liveness and teardown.  Two implementations:

* :class:`LocalEndpoint` runs directly on an in-process
  :class:`~repro.device.emulated.EmulatedDevice`;
* :class:`TransportEndpoint` speaks the master/worker wire protocol over
  any :class:`~repro.comm.transport.Transport` (in-process channel or TCP),
  so the same engine drives a remote
  :class:`~repro.distributed.worker.WorkerServer` unchanged.

All endpoint compute is stateless with respect to activations: standalone
sub-network runs execute under per-call non-recording
:class:`~repro.nn.context.ForwardContext`\\ s (see
:meth:`EmulatedDevice.execute_subnet`), and the partitioned rounds call the
stateless kernels in :mod:`repro.distributed.partitioned` directly — no
endpoint ever caches activations on the shared net.  Width-bound
:class:`~repro.engine.session.InferenceSession`\\ s (built with a subnet
name, hence context slice bindings) may therefore share the endpoints'
weight store; sessions over a *bare* slimmable net read the layers'
default slices and must not run concurrently with endpoint traffic.

Emulated-time accounting mirrors the historical master runtime exactly:
local endpoints report their per-layer compute seconds (and charge the
device's busy clock); transport endpoints report the wire payload of each
request/reply pair so the engine can charge the communication model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.comm.message import Message, MessageKind
from repro.comm.transport import Transport, TransportError
from repro.comm.wire import cast_for_wire
from repro.device.cost import block_partitioned_costs, subnet_layer_costs
from repro.device.emulated import EmulatedDevice
from repro.distributed.partitioned import (
    conv_block_half,
    fc_partial,
    feature_slice_for_block,
    flatten_channel_block,
)
from repro.slimmable.spec import ChannelSlice, SubNetSpec
from repro.utils.dtypes import compute_dtype


class EndpointUnavailable(RuntimeError):
    """Raised when an endpoint's device cannot be reached (the failure signal)."""


class EndpointTimeout(RuntimeError):
    """The endpoint missed the request timeout but its peer is still alive.

    Distinct from :class:`EndpointUnavailable` so callers can hedge or keep
    waiting (the reply is still coming — the transport stays in sync and
    :meth:`TransportEndpoint.await_reply` resumes the wait) instead of
    ejecting a worker that is merely slow.  Raised only when the endpoint
    was built with an ``alive_probe``; without one, every failure keeps the
    legacy "unavailable" classification.
    """


@dataclass
class EndpointReply:
    """One endpoint response plus its accounting facts."""

    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    fields: Dict[str, Any] = field(default_factory=dict)
    compute_s: float = 0.0   # emulated seconds to charge the engine ledger
    payload_bytes: int = 0   # max(sent, received) wire bytes (0 for local)


class Endpoint:
    """One device's execution surface, local or remote."""

    name: str

    @property
    def available(self) -> bool:
        raise NotImplementedError

    def ping(self, timeout: float = 1.0) -> bool:
        raise NotImplementedError

    def run_subnet(self, spec: SubNetSpec, x: np.ndarray) -> EndpointReply:
        raise NotImplementedError

    def begin_partition(
        self, spec: SubNetSpec, boundaries: Sequence[int], index: int
    ) -> None:
        """Start a width-partitioned program; remote peers keep their own state."""

    def partition_layer(
        self,
        spec: SubNetSpec,
        layer: int,
        block: ChannelSlice,
        in_slice: Optional[ChannelSlice],
        full: np.ndarray,
        prev_block: Optional[ChannelSlice],
    ) -> EndpointReply:
        """Compute this device's ``block`` of conv ``layer``.

        ``full`` is the complete previous activation (the input image at
        layer 0); ``prev_block`` is the channel block this device produced
        in the previous round (None at layer 0).
        """
        raise NotImplementedError

    def partition_fc(
        self,
        spec: SubNetSpec,
        block: ChannelSlice,
        full: np.ndarray,
        include_bias: bool,
    ) -> EndpointReply:
        raise NotImplementedError

    # -- compiled partitioned program (delta halo exchange) --------------------

    def begin_partition_plan(
        self, spec: SubNetSpec, boundaries: Sequence[int], index: int, rows: int
    ) -> None:
        """Start a *compiled* partitioned program for one batch of ``rows``.

        Unlike :meth:`begin_partition`, this also pins the batch geometry so
        the endpoint can check a pre-sized workspace out.  Transport
        endpoints send nothing here — the plan parameters ride on the
        layer-0 round message, keeping message counts identical to the
        eager protocol.
        """
        raise NotImplementedError

    def partition_round(
        self,
        spec: SubNetSpec,
        layer: int,
        x: Optional[np.ndarray] = None,
        peers: Sequence[Tuple[ChannelSlice, np.ndarray]] = (),
        need_half: bool = True,
    ) -> EndpointReply:
        """One compiled conv round under delta halo exchange.

        Layer 0 carries the input batch ``x``; later rounds carry only the
        *peers'* halves of the previous activation (this device already
        holds its own half in its arena).  When ``need_half`` is False (the
        last conv round) the reply ships no activation at all.
        """
        raise NotImplementedError

    def partition_fc_round(self, spec: SubNetSpec, include_bias: bool) -> EndpointReply:
        """Final compiled round: partial logits from the locally-kept features."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release the endpoint (remote peers are told to stop serving)."""

    def crash(self) -> None:
        """Test hook: simulate a power failure on the device."""


class LocalEndpoint(Endpoint):
    """Runs directly on an in-process emulated device."""

    def __init__(self, name: str, device: EmulatedDevice) -> None:
        self.name = name
        self.device = device
        self._partition_costs: Optional[Tuple[str, list]] = None
        self._partition_cost_cache: Dict[tuple, list] = {}
        self._compiler: Optional[Any] = None  # PartitionPlanCompiler, lazy
        self._plan: Optional[Any] = None      # DevicePartitionPlan of the open run
        self._run: Optional[Any] = None       # its checked-out _PartitionRun

    @property
    def available(self) -> bool:
        return self.device.alive

    def ping(self, timeout: float = 1.0) -> bool:
        return self.device.alive

    def run_subnet(self, spec: SubNetSpec, x: np.ndarray) -> EndpointReply:
        logits = self.device.execute_subnet(spec, x)
        compute_s = self.device.estimated_latency(spec) * x.shape[0]
        return EndpointReply(arrays={"logits": logits}, compute_s=compute_s)

    # -- partitioned program ---------------------------------------------------

    def begin_partition(
        self, spec: SubNetSpec, boundaries: Sequence[int], index: int
    ) -> None:
        key = (spec.name, id(spec), tuple(boundaries), index)
        costs = self._partition_cost_cache.get(key)
        if costs is None:
            per_device, _ = block_partitioned_costs(
                self.device.net, spec, tuple(boundaries)
            )
            costs = self._partition_cost_cache[key] = per_device[index]
        self._partition_costs = (spec.name, costs)

    def _session_cost(self, spec: SubNetSpec, layer: int):
        if self._partition_costs is None or self._partition_costs[0] != spec.name:
            raise RuntimeError("partition round before begin_partition")
        return self._partition_costs[1][layer]

    def partition_layer(
        self,
        spec: SubNetSpec,
        layer: int,
        block: ChannelSlice,
        in_slice: Optional[ChannelSlice],
        full: np.ndarray,
        prev_block: Optional[ChannelSlice],
    ) -> EndpointReply:
        half = conv_block_half(self.device.net, layer, full, block, in_slice)
        n = full.shape[0]
        cost = self._session_cost(spec, layer)
        profile = self.device.profile
        self.device.busy_time_s += profile.compute_time(cost.flops * n, n)
        return EndpointReply(
            arrays={"half": half},
            compute_s=profile.compute_time(cost.flops, 1) * n,
        )

    def partition_fc(
        self,
        spec: SubNetSpec,
        block: ChannelSlice,
        full: np.ndarray,
        include_bias: bool,
    ) -> EndpointReply:
        net = self.device.net
        feats = flatten_channel_block(full[:, block.start : block.stop])
        logits = fc_partial(
            net, feats, feature_slice_for_block(net, block), include_bias=include_bias
        )
        cost = self._session_cost(spec, len(spec.conv_slices))
        compute_s = self.device.profile.compute_time(cost.flops, 1) * full.shape[0]
        return EndpointReply(arrays={"partial_logits": logits}, compute_s=compute_s)

    # -- compiled partitioned program ------------------------------------------

    def begin_partition_plan(
        self, spec: SubNetSpec, boundaries: Sequence[int], index: int, rows: int
    ) -> None:
        from repro.engine.dist_plan import PartitionPlanCompiler

        self.begin_partition(spec, boundaries, index)
        if self._compiler is None or self._compiler.net is not self.device.net:
            self._compiler = PartitionPlanCompiler(self.device.net)
        plan = self._compiler.plan_for(spec, tuple(boundaries), index, rows)
        if self._run is not None:  # abandoned batch (e.g. a peer crashed mid-round)
            self._plan.finish(self._run)
        self._plan = plan
        self._run = plan.begin(rows)

    def _require_run(self):
        if self._run is None:
            raise RuntimeError("compiled partition round before begin_partition_plan")
        return self._plan, self._run

    def partition_round(
        self,
        spec: SubNetSpec,
        layer: int,
        x: Optional[np.ndarray] = None,
        peers: Sequence[Tuple[ChannelSlice, np.ndarray]] = (),
        need_half: bool = True,
    ) -> EndpointReply:
        plan, run = self._require_run()
        if layer == 0:
            if x is None:
                raise ValueError("layer 0 round needs the input batch")
            plan.scatter_input(run, x)
        else:
            for block, half in peers:
                plan.absorb(run, layer, block, half)
        half = plan.run_layer(run, layer)
        # Same emulated-time formulas as the eager partition_layer, so the
        # compiled path stays ledger-comparable with the reference runtime.
        cost = self._session_cost(spec, layer)
        n = run.rows
        profile = self.device.profile
        self.device.busy_time_s += profile.compute_time(cost.flops * n, n)
        arrays = {"half": half} if (need_half and half is not None) else {}
        return EndpointReply(
            arrays=arrays, compute_s=profile.compute_time(cost.flops, 1) * n
        )

    def partition_fc_round(self, spec: SubNetSpec, include_bias: bool) -> EndpointReply:
        plan, run = self._require_run()
        logits = plan.run_fc(run, include_bias)
        cost = self._session_cost(spec, len(spec.conv_slices))
        compute_s = self.device.profile.compute_time(cost.flops, 1) * run.rows
        # The logits view stays valid until the next begin_partition_plan
        # re-acquires the workspace; the engine consumes it within the round.
        plan.finish(run)
        self._run = None
        return EndpointReply(arrays={"partial_logits": logits}, compute_s=compute_s)


class TransportEndpoint(Endpoint):
    """Speaks the wire protocol to a remote worker over a transport."""

    def __init__(
        self,
        name: str,
        transport: Optional[Transport],
        *,
        request_timeout: float = 10.0,
        alive_probe: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.transport = transport
        self.request_timeout = request_timeout
        # Optional () -> bool liveness oracle independent of the transport
        # (e.g. ``Process.is_alive`` for a process-pool worker).  With a
        # probe installed, a recv timeout on an open transport whose peer
        # probes alive raises EndpointTimeout ("slow") instead of
        # EndpointUnavailable ("dead").
        self.alive_probe = alive_probe
        # Optional fault-injection hook consulted before each reply wait
        # (see repro.faults.injector).  It may sleep (a delayed reply) or
        # raise TransportError (a dropped message); the slow-vs-dead
        # classification below then applies unchanged.  Never set by
        # production code — None costs one attribute check per wait.
        self.intercept: Optional[Callable[[], None]] = None
        self._pending_sent_bytes = 0
        self._plan_session: Optional[Tuple[Tuple[int, ...], int, int]] = None

    @property
    def available(self) -> bool:
        return self.transport is not None and not self.transport.closed

    def ping(self, timeout: float = 1.0) -> bool:
        if not self.available:
            return False
        try:
            self.transport.send(Message(MessageKind.PING))
            reply = self.transport.recv(timeout=timeout)
        except TransportError:
            return False
        return reply.kind == MessageKind.PONG

    def _request(self, message: Message) -> Tuple[Message, int]:
        if not self.available:
            raise EndpointUnavailable(f"no transport to {self.name}")
        try:
            self.transport.send(message)
        except TransportError as exc:
            raise EndpointUnavailable(str(exc)) from exc
        self._pending_sent_bytes = sum(a.nbytes for a in message.arrays.values())
        return self.await_reply()

    def await_reply(self, timeout: Optional[float] = None) -> Tuple[Message, int]:
        """Wait for the reply to the request currently in flight.

        After an :class:`EndpointTimeout` the worker is still computing and
        the transport is still in sync — call this again to keep waiting.
        Re-*sending* after a timeout would desynchronise request/reply
        pairing; patience loops must resume the recv instead.
        """
        try:
            if self.intercept is not None:
                self.intercept()
            reply = self.transport.recv(timeout=timeout or self.request_timeout)
        except TransportError as exc:
            # A timeout leaves the transport open; hard failures close it.
            # "Slow" therefore means: transport open AND the liveness probe
            # (when we have one) still vouches for the peer.
            if (
                self.available
                and self.alive_probe is not None
                and self.alive_probe()
            ):
                raise EndpointTimeout(f"{self.name} slow: {exc}") from exc
            raise EndpointUnavailable(str(exc)) from exc
        if reply.kind == MessageKind.ERROR:
            raise EndpointUnavailable(
                f"{self.name} error: {reply.fields.get('reason')}"
            )
        payload = max(
            self._pending_sent_bytes,
            sum(a.nbytes for a in reply.arrays.values()),
        )
        return reply, int(payload)

    def run_subnet(self, spec: SubNetSpec, x: np.ndarray) -> EndpointReply:
        reply, payload = self._request(
            Message(
                MessageKind.RUN_SUBNET,
                fields={"spec": spec.name},
                arrays={"x": cast_for_wire(x)},
            )
        )
        logits = reply.arrays["logits"].astype(compute_dtype())
        return EndpointReply(
            arrays={"logits": logits},
            fields=reply.fields,
            compute_s=float(reply.fields.get("compute_s", 0.0)),
            payload_bytes=payload,
        )

    def run_parts(
        self,
        width: str,
        fields: Dict[str, Any],
        arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> EndpointReply:
        """One micro-batch flush crossing the process boundary as one message.

        ``fields`` describes where the rows live — normally a shared-memory
        ring placement (``{"ring_offset", "rows", "row_shape", "dtype"}``)
        so no row bytes touch the wire; ``arrays`` is the inline fallback
        for batches that outgrow the ring.  The reply mirrors the choice:
        ring replies carry only an output placement descriptor.
        """
        reply, payload = self._request(
            Message(
                MessageKind.RUN_PARTS,
                fields={"spec": width, **fields},
                arrays=dict(arrays or {}),
            )
        )
        return EndpointReply(
            arrays=reply.arrays,
            fields=reply.fields,
            compute_s=float(reply.fields.get("compute_s", 0.0)),
            payload_bytes=payload,
        )

    def partition_layer(
        self,
        spec: SubNetSpec,
        layer: int,
        block: ChannelSlice,
        in_slice: Optional[ChannelSlice],
        full: np.ndarray,
        prev_block: Optional[ChannelSlice],
    ) -> EndpointReply:
        if layer == 0:
            arrays = {"input": cast_for_wire(full)}
        else:
            if prev_block is None:
                raise ValueError("partition round >0 needs the previous block")
            if prev_block.stop < full.shape[1]:
                raise ValueError(
                    "transport endpoints must own the topmost channel block "
                    "(the wire protocol ships only the channels below it)"
                )
            arrays = {"master_half": cast_for_wire(full[:, : prev_block.start])}
        reply, payload = self._request(
            Message(
                MessageKind.PARTIAL_FORWARD,
                fields={"op": "layer", "layer": layer, "spec": spec.name},
                arrays=arrays,
            )
        )
        half = reply.arrays["half"].astype(compute_dtype())
        return EndpointReply(arrays={"half": half}, payload_bytes=payload)

    def partition_fc(
        self,
        spec: SubNetSpec,
        block: ChannelSlice,
        full: np.ndarray,
        include_bias: bool,
    ) -> EndpointReply:
        if include_bias:
            raise ValueError("the classifier bias is owned by the first (local) block")
        reply, payload = self._request(
            Message(MessageKind.PARTIAL_FORWARD, fields={"op": "fc", "spec": spec.name})
        )
        logits = reply.arrays["partial_logits"].astype(compute_dtype())
        return EndpointReply(arrays={"partial_logits": logits}, payload_bytes=payload)

    # -- compiled partitioned program ------------------------------------------

    def begin_partition_plan(
        self, spec: SubNetSpec, boundaries: Sequence[int], index: int, rows: int
    ) -> None:
        # Message-free: the plan parameters are folded into the layer-0
        # round message so the compiled protocol exchanges exactly as many
        # messages per batch as the eager one (comm accounting stays
        # comparable).
        self._plan_session = (tuple(int(b) for b in boundaries), int(index), int(rows))

    def partition_round(
        self,
        spec: SubNetSpec,
        layer: int,
        x: Optional[np.ndarray] = None,
        peers: Sequence[Tuple[ChannelSlice, np.ndarray]] = (),
        need_half: bool = True,
    ) -> EndpointReply:
        fields: Dict[str, Any] = {
            "op": "layer",
            "layer": int(layer),
            "spec": spec.name,
            "need_half": bool(need_half),
        }
        arrays: Dict[str, np.ndarray] = {}
        if layer == 0:
            session = getattr(self, "_plan_session", None)
            if session is None:
                raise ValueError("layer 0 round before begin_partition_plan")
            if x is None:
                raise ValueError("layer 0 round needs the input batch")
            boundaries, index, rows = session
            fields.update(boundaries=list(boundaries), index=index, rows=rows)
            arrays["input"] = cast_for_wire(x)
        else:
            blocks = []
            for j, (block, half) in enumerate(peers):
                arrays[f"peer{j}"] = cast_for_wire(half)
                blocks.append([int(block.start), int(block.stop)])
            fields["peers"] = blocks
        reply, payload = self._request(
            Message(MessageKind.PARTITION_ROUND, fields=fields, arrays=arrays)
        )
        out: Dict[str, np.ndarray] = {}
        if "half" in reply.arrays:
            out["half"] = reply.arrays["half"].astype(compute_dtype())
        return EndpointReply(arrays=out, payload_bytes=payload)

    def partition_fc_round(self, spec: SubNetSpec, include_bias: bool) -> EndpointReply:
        reply, payload = self._request(
            Message(
                MessageKind.PARTITION_ROUND,
                fields={"op": "fc", "spec": spec.name, "include_bias": bool(include_bias)},
            )
        )
        logits = reply.arrays["partial_logits"].astype(compute_dtype())
        return EndpointReply(arrays={"partial_logits": logits}, payload_bytes=payload)

    def shutdown(self) -> None:
        if self.available:
            try:
                self.transport.send(Message(MessageKind.SHUTDOWN))
            except TransportError:
                pass
            self.transport.close()

    def crash(self) -> None:
        if self.available:
            try:
                self.transport.send(Message(MessageKind.CRASH))
            except TransportError:
                pass
