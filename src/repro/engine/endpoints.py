"""Pluggable execution endpoints: where a device's compute actually runs.

An :class:`Endpoint` answers the engine's three requests — standalone
sub-network inference, one width-partitioned layer round, and the final
partial-logit gather — plus liveness and teardown.  Two implementations:

* :class:`LocalEndpoint` runs directly on an in-process
  :class:`~repro.device.emulated.EmulatedDevice`;
* :class:`TransportEndpoint` speaks the master/worker wire protocol over
  any :class:`~repro.comm.transport.Transport` (in-process channel or TCP),
  so the same engine drives a remote
  :class:`~repro.distributed.worker.WorkerServer` unchanged.

All endpoint compute is stateless with respect to activations: standalone
sub-network runs execute under per-call non-recording
:class:`~repro.nn.context.ForwardContext`\\ s (see
:meth:`EmulatedDevice.execute_subnet`), and the partitioned rounds call the
stateless kernels in :mod:`repro.distributed.partitioned` directly — no
endpoint ever caches activations on the shared net.  Width-bound
:class:`~repro.engine.session.InferenceSession`\\ s (built with a subnet
name, hence context slice bindings) may therefore share the endpoints'
weight store; sessions over a *bare* slimmable net read the layers'
default slices and must not run concurrently with endpoint traffic.

Emulated-time accounting mirrors the historical master runtime exactly:
local endpoints report their per-layer compute seconds (and charge the
device's busy clock); transport endpoints report the wire payload of each
request/reply pair so the engine can charge the communication model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.comm.message import Message, MessageKind
from repro.comm.transport import Transport, TransportError
from repro.comm.wire import cast_for_wire
from repro.device.cost import block_partitioned_costs, subnet_layer_costs
from repro.device.emulated import EmulatedDevice
from repro.distributed.partitioned import (
    conv_block_half,
    fc_partial,
    feature_slice_for_block,
    flatten_channel_block,
)
from repro.slimmable.spec import ChannelSlice, SubNetSpec
from repro.utils.dtypes import compute_dtype


class EndpointUnavailable(RuntimeError):
    """Raised when an endpoint's device cannot be reached (the failure signal)."""


class EndpointTimeout(RuntimeError):
    """The endpoint missed the request timeout but its peer is still alive.

    Distinct from :class:`EndpointUnavailable` so callers can hedge or keep
    waiting (the reply is still coming — the transport stays in sync and
    :meth:`TransportEndpoint.await_reply` resumes the wait) instead of
    ejecting a worker that is merely slow.  Raised only when the endpoint
    was built with an ``alive_probe``; without one, every failure keeps the
    legacy "unavailable" classification.
    """


@dataclass
class EndpointReply:
    """One endpoint response plus its accounting facts."""

    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    fields: Dict[str, Any] = field(default_factory=dict)
    compute_s: float = 0.0   # emulated seconds to charge the engine ledger
    payload_bytes: int = 0   # max(sent, received) wire bytes (0 for local)


class Endpoint:
    """One device's execution surface, local or remote."""

    name: str

    @property
    def available(self) -> bool:
        raise NotImplementedError

    def ping(self, timeout: float = 1.0) -> bool:
        raise NotImplementedError

    def run_subnet(self, spec: SubNetSpec, x: np.ndarray) -> EndpointReply:
        raise NotImplementedError

    def begin_partition(
        self, spec: SubNetSpec, boundaries: Sequence[int], index: int
    ) -> None:
        """Start a width-partitioned program; remote peers keep their own state."""

    def partition_layer(
        self,
        spec: SubNetSpec,
        layer: int,
        block: ChannelSlice,
        in_slice: Optional[ChannelSlice],
        full: np.ndarray,
        prev_block: Optional[ChannelSlice],
    ) -> EndpointReply:
        """Compute this device's ``block`` of conv ``layer``.

        ``full`` is the complete previous activation (the input image at
        layer 0); ``prev_block`` is the channel block this device produced
        in the previous round (None at layer 0).
        """
        raise NotImplementedError

    def partition_fc(
        self,
        spec: SubNetSpec,
        block: ChannelSlice,
        full: np.ndarray,
        include_bias: bool,
    ) -> EndpointReply:
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release the endpoint (remote peers are told to stop serving)."""

    def crash(self) -> None:
        """Test hook: simulate a power failure on the device."""


class LocalEndpoint(Endpoint):
    """Runs directly on an in-process emulated device."""

    def __init__(self, name: str, device: EmulatedDevice) -> None:
        self.name = name
        self.device = device
        self._partition_costs: Optional[Tuple[str, list]] = None

    @property
    def available(self) -> bool:
        return self.device.alive

    def ping(self, timeout: float = 1.0) -> bool:
        return self.device.alive

    def run_subnet(self, spec: SubNetSpec, x: np.ndarray) -> EndpointReply:
        logits = self.device.execute_subnet(spec, x)
        compute_s = self.device.estimated_latency(spec) * x.shape[0]
        return EndpointReply(arrays={"logits": logits}, compute_s=compute_s)

    # -- partitioned program ---------------------------------------------------

    def begin_partition(
        self, spec: SubNetSpec, boundaries: Sequence[int], index: int
    ) -> None:
        per_device, _ = block_partitioned_costs(self.device.net, spec, tuple(boundaries))
        self._partition_costs = (spec.name, per_device[index])

    def _session_cost(self, spec: SubNetSpec, layer: int):
        if self._partition_costs is None or self._partition_costs[0] != spec.name:
            raise RuntimeError("partition round before begin_partition")
        return self._partition_costs[1][layer]

    def partition_layer(
        self,
        spec: SubNetSpec,
        layer: int,
        block: ChannelSlice,
        in_slice: Optional[ChannelSlice],
        full: np.ndarray,
        prev_block: Optional[ChannelSlice],
    ) -> EndpointReply:
        half = conv_block_half(self.device.net, layer, full, block, in_slice)
        n = full.shape[0]
        cost = self._session_cost(spec, layer)
        profile = self.device.profile
        self.device.busy_time_s += profile.compute_time(cost.flops * n, n)
        return EndpointReply(
            arrays={"half": half},
            compute_s=profile.compute_time(cost.flops, 1) * n,
        )

    def partition_fc(
        self,
        spec: SubNetSpec,
        block: ChannelSlice,
        full: np.ndarray,
        include_bias: bool,
    ) -> EndpointReply:
        net = self.device.net
        feats = flatten_channel_block(full[:, block.start : block.stop])
        logits = fc_partial(
            net, feats, feature_slice_for_block(net, block), include_bias=include_bias
        )
        cost = self._session_cost(spec, len(spec.conv_slices))
        compute_s = self.device.profile.compute_time(cost.flops, 1) * full.shape[0]
        return EndpointReply(arrays={"partial_logits": logits}, compute_s=compute_s)


class TransportEndpoint(Endpoint):
    """Speaks the wire protocol to a remote worker over a transport."""

    def __init__(
        self,
        name: str,
        transport: Optional[Transport],
        *,
        request_timeout: float = 10.0,
        alive_probe: Optional[Any] = None,
    ) -> None:
        self.name = name
        self.transport = transport
        self.request_timeout = request_timeout
        # Optional () -> bool liveness oracle independent of the transport
        # (e.g. ``Process.is_alive`` for a process-pool worker).  With a
        # probe installed, a recv timeout on an open transport whose peer
        # probes alive raises EndpointTimeout ("slow") instead of
        # EndpointUnavailable ("dead").
        self.alive_probe = alive_probe
        self._pending_sent_bytes = 0

    @property
    def available(self) -> bool:
        return self.transport is not None and not self.transport.closed

    def ping(self, timeout: float = 1.0) -> bool:
        if not self.available:
            return False
        try:
            self.transport.send(Message(MessageKind.PING))
            reply = self.transport.recv(timeout=timeout)
        except TransportError:
            return False
        return reply.kind == MessageKind.PONG

    def _request(self, message: Message) -> Tuple[Message, int]:
        if not self.available:
            raise EndpointUnavailable(f"no transport to {self.name}")
        try:
            self.transport.send(message)
        except TransportError as exc:
            raise EndpointUnavailable(str(exc)) from exc
        self._pending_sent_bytes = sum(a.nbytes for a in message.arrays.values())
        return self.await_reply()

    def await_reply(self, timeout: Optional[float] = None) -> Tuple[Message, int]:
        """Wait for the reply to the request currently in flight.

        After an :class:`EndpointTimeout` the worker is still computing and
        the transport is still in sync — call this again to keep waiting.
        Re-*sending* after a timeout would desynchronise request/reply
        pairing; patience loops must resume the recv instead.
        """
        try:
            reply = self.transport.recv(timeout=timeout or self.request_timeout)
        except TransportError as exc:
            # A timeout leaves the transport open; hard failures close it.
            # "Slow" therefore means: transport open AND the liveness probe
            # (when we have one) still vouches for the peer.
            if (
                self.available
                and self.alive_probe is not None
                and self.alive_probe()
            ):
                raise EndpointTimeout(f"{self.name} slow: {exc}") from exc
            raise EndpointUnavailable(str(exc)) from exc
        if reply.kind == MessageKind.ERROR:
            raise EndpointUnavailable(
                f"{self.name} error: {reply.fields.get('reason')}"
            )
        payload = max(
            self._pending_sent_bytes,
            sum(a.nbytes for a in reply.arrays.values()),
        )
        return reply, int(payload)

    def run_subnet(self, spec: SubNetSpec, x: np.ndarray) -> EndpointReply:
        reply, payload = self._request(
            Message(
                MessageKind.RUN_SUBNET,
                fields={"spec": spec.name},
                arrays={"x": cast_for_wire(x)},
            )
        )
        logits = reply.arrays["logits"].astype(compute_dtype())
        return EndpointReply(
            arrays={"logits": logits},
            fields=reply.fields,
            compute_s=float(reply.fields.get("compute_s", 0.0)),
            payload_bytes=payload,
        )

    def run_parts(
        self,
        width: str,
        fields: Dict[str, Any],
        arrays: Optional[Dict[str, np.ndarray]] = None,
    ) -> EndpointReply:
        """One micro-batch flush crossing the process boundary as one message.

        ``fields`` describes where the rows live — normally a shared-memory
        ring placement (``{"ring_offset", "rows", "row_shape", "dtype"}``)
        so no row bytes touch the wire; ``arrays`` is the inline fallback
        for batches that outgrow the ring.  The reply mirrors the choice:
        ring replies carry only an output placement descriptor.
        """
        reply, payload = self._request(
            Message(
                MessageKind.RUN_PARTS,
                fields={"spec": width, **fields},
                arrays=dict(arrays or {}),
            )
        )
        return EndpointReply(
            arrays=reply.arrays,
            fields=reply.fields,
            compute_s=float(reply.fields.get("compute_s", 0.0)),
            payload_bytes=payload,
        )

    def partition_layer(
        self,
        spec: SubNetSpec,
        layer: int,
        block: ChannelSlice,
        in_slice: Optional[ChannelSlice],
        full: np.ndarray,
        prev_block: Optional[ChannelSlice],
    ) -> EndpointReply:
        if layer == 0:
            arrays = {"input": cast_for_wire(full)}
        else:
            if prev_block is None:
                raise ValueError("partition round >0 needs the previous block")
            if prev_block.stop < full.shape[1]:
                raise ValueError(
                    "transport endpoints must own the topmost channel block "
                    "(the wire protocol ships only the channels below it)"
                )
            arrays = {"master_half": cast_for_wire(full[:, : prev_block.start])}
        reply, payload = self._request(
            Message(
                MessageKind.PARTIAL_FORWARD,
                fields={"op": "layer", "layer": layer, "spec": spec.name},
                arrays=arrays,
            )
        )
        half = reply.arrays["half"].astype(compute_dtype())
        return EndpointReply(arrays={"half": half}, payload_bytes=payload)

    def partition_fc(
        self,
        spec: SubNetSpec,
        block: ChannelSlice,
        full: np.ndarray,
        include_bias: bool,
    ) -> EndpointReply:
        if include_bias:
            raise ValueError("the classifier bias is owned by the first (local) block")
        reply, payload = self._request(
            Message(MessageKind.PARTIAL_FORWARD, fields={"op": "fc", "spec": spec.name})
        )
        logits = reply.arrays["partial_logits"].astype(compute_dtype())
        return EndpointReply(arrays={"partial_logits": logits}, payload_bytes=payload)

    def shutdown(self) -> None:
        if self.available:
            try:
                self.transport.send(Message(MessageKind.SHUTDOWN))
            except TransportError:
                pass
            self.transport.close()

    def crash(self) -> None:
        if self.available:
            try:
                self.transport.send(Message(MessageKind.CRASH))
            except TransportError:
                pass
