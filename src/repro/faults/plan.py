"""Deterministic fault plans: seeded, serializable failure schedules.

The device plane has always scripted failures
(:mod:`repro.device.failure`); this module generalises that vocabulary to
the *serving* plane so a fault schedule is a first-class, replayable
input — exactly like a traffic trace.  A :class:`FaultPlan` is an ordered
list of :class:`FaultEvent`\\ s, each naming a time, a target and one of
the :data:`FAULT_KINDS`:

``crash``
    SIGKILL the target (a process worker genuinely dies; a thread
    replica flips its liveness flag).  Paired with ``recover`` in
    device-plane schedules; serving-plane recovery is the supervisor's
    job, not the schedule's.
``stall``
    Artificial service delay: every batch the target serves during the
    window takes ``delay_s`` longer (a straggler, not a corpse).
``drop``
    Endpoint message loss: replies from the target are withheld for the
    window, surfacing as transport timeouts on the await/reply path.
``heartbeat_delay``
    The target's heartbeats go dark for the window while it keeps
    serving — the false-positive-ejection scenario.
``shm_attach_fail``
    The next ``count`` respawn attempts for the target fail at
    shared-memory attach, exercising supervisor backoff.

Plans serialize to JSON (they ride in ``repro-trace`` artifact meta, see
:mod:`repro.trace.recorder`) and are generated deterministically from a
seed via :func:`repro.utils.rng.derive_seed` — same seed, same incident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.utils.rng import derive_seed, make_rng

CRASH = "crash"
RECOVER = "recover"
STALL = "stall"
DROP = "drop"
HEARTBEAT_DELAY = "heartbeat_delay"
SHM_ATTACH_FAIL = "shm_attach_fail"

#: Every fault kind a plan may script.  ``crash``/``recover`` are the
#: original device-plane pair; the rest are serving-plane faults.
FAULT_KINDS = (CRASH, RECOVER, STALL, DROP, HEARTBEAT_DELAY, SHM_ATTACH_FAIL)


def replica_target(index: int) -> str:
    """Canonical target string for serving replica ``index``."""
    return f"replica:{int(index)}"


def target_index(target: str) -> int:
    """Parse a ``replica:N`` target back to its index."""
    prefix, _, tail = target.partition(":")
    if prefix != "replica" or not tail.lstrip("-").isdigit():
        raise ValueError(f"not a replica target: {target!r}")
    return int(tail)


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault: at ``time_s``, do ``kind`` to ``target``.

    ``duration_s`` bounds window faults (stall / drop / heartbeat_delay);
    ``delay_s`` is the per-batch service delay a stall adds; ``count`` is
    how many attempts an ``shm_attach_fail`` poisons.  Irrelevant knobs
    stay at their defaults and are omitted from the JSON form.
    """

    time_s: float
    target: str
    kind: str = CRASH
    duration_s: float = 0.0
    delay_s: float = 0.0
    count: int = 1

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time_s}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (not in {FAULT_KINDS})")
        if self.duration_s < 0 or self.delay_s < 0:
            raise ValueError("fault durations must be non-negative")
        if self.count < 1:
            raise ValueError("count must be at least 1")

    @property
    def device(self) -> str:
        """Device-plane alias for :attr:`target` (see :mod:`repro.device.failure`)."""
        return self.target

    def to_json(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "time_s": self.time_s, "target": self.target, "kind": self.kind,
        }
        if self.duration_s:
            data["duration_s"] = self.duration_s
        if self.delay_s:
            data["delay_s"] = self.delay_s
        if self.count != 1:
            data["count"] = self.count
        return data

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FaultEvent":
        return cls(
            time_s=float(data["time_s"]),
            target=str(data["target"]),
            kind=str(data.get("kind", CRASH)),
            duration_s=float(data.get("duration_s", 0.0)),
            delay_s=float(data.get("delay_s", 0.0)),
            count=int(data.get("count", 1)),
        )


def _order(event: FaultEvent) -> Tuple[float, str, str]:
    return (event.time_s, event.target, event.kind)


@dataclass
class FaultPlan:
    """A time-ordered schedule of fault events.

    Preserves the :class:`~repro.device.failure.FailureSchedule` liveness
    contract exactly — ``is_alive`` applies an event *at* the query time
    (a crash at t=5.0 means dead when asked about t=5.0) — so the device
    plane can be a thin alias over this type.
    """

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=_order)

    def add(self, event: FaultEvent) -> None:
        self.events.append(event)
        self.events.sort(key=_order)

    def is_alive(self, target: str, now_s: float) -> bool:
        """Crash/recover liveness of ``target`` at ``now_s``."""
        alive = True
        for event in self.events:
            if event.target != target or event.kind not in (CRASH, RECOVER):
                continue
            if event.time_s > now_s:
                break
            alive = event.kind == RECOVER
        return alive

    def crash_time(self, target: str) -> Optional[float]:
        """Time of the first scripted crash of ``target``, if any."""
        for event in self.events:
            if event.target == target and event.kind == CRASH:
                return event.time_s
        return None

    def of_kind(self, *kinds: str) -> List[FaultEvent]:
        return [e for e in self.events if e.kind in kinds]

    def targets(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for event in self.events:
            if event.target not in seen:
                seen.append(event.target)
        return tuple(seen)

    def to_json(self) -> Dict[str, object]:
        return {"events": [e.to_json() for e in self.events]}

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "FaultPlan":
        events = [FaultEvent.from_json(e) for e in data.get("events", [])]
        return cls(events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)


def chaos_plan(
    seed: int,
    *,
    replicas: int,
    duration_s: float,
    crashes: int = 1,
    stalls: int = 0,
    drops: int = 0,
    heartbeat_delays: int = 0,
    window: Tuple[float, float] = (0.25, 0.75),
    stall_duration_s: float = 0.2,
    stall_delay_s: float = 0.02,
    drop_duration_s: float = 0.08,
    heartbeat_duration_s: float = 0.15,
) -> FaultPlan:
    """Seed-deterministic chaos schedule over a replica pool.

    Draws fault times uniformly inside ``window`` (fractions of
    ``duration_s``) and assigns targets from a seeded permutation so one
    schedule never crashes the same replica twice — and never crashes
    *every* replica (at least one survivor keeps the zero-lost invariant
    reachable).  The draw order is fixed (crashes, stalls, drops,
    heartbeat delays), so a given ``(seed, kwargs)`` always yields the
    same plan.
    """
    if replicas < 1:
        raise ValueError("need at least one replica")
    rng = make_rng(derive_seed(seed, "faults", "chaos_plan"))
    lo, hi = window
    if not 0.0 <= lo <= hi <= 1.0:
        raise ValueError(f"window must satisfy 0 <= lo <= hi <= 1, got {window}")

    def draw_time() -> float:
        return round(duration_s * (lo + (hi - lo) * float(rng.random())), 6)

    order = [int(i) for i in rng.permutation(replicas)]
    cursor = 0

    def next_target() -> str:
        nonlocal cursor
        target = replica_target(order[cursor % len(order)])
        cursor += 1
        return target

    events: List[FaultEvent] = []
    for _ in range(min(crashes, max(0, replicas - 1))):
        events.append(FaultEvent(draw_time(), next_target(), CRASH))
    for _ in range(stalls):
        events.append(FaultEvent(
            draw_time(), next_target(), STALL,
            duration_s=stall_duration_s, delay_s=stall_delay_s,
        ))
    for _ in range(drops):
        events.append(FaultEvent(
            draw_time(), next_target(), DROP, duration_s=drop_duration_s,
        ))
    for _ in range(heartbeat_delays):
        events.append(FaultEvent(
            draw_time(), next_target(), HEARTBEAT_DELAY,
            duration_s=heartbeat_duration_s,
        ))
    return FaultPlan(events)


def single_fault(target: str, at_s: float = 0.0, kind: str = CRASH) -> FaultPlan:
    """A one-event plan (the serving twin of ``device.single_failure``)."""
    return FaultPlan([FaultEvent(at_s, target, kind)])
