"""Deterministic fault injection, supervised respawn, degradation policies.

The serving-plane half of the repo's fault story (the device-plane
:mod:`repro.device.failure` is now a thin adapter over these types):

* :mod:`~repro.faults.plan` — seeded, serialisable fault schedules;
* :mod:`~repro.faults.injector` — applies a plan to a live frontend at
  existing seams (no production test-only branches);
* :mod:`~repro.faults.supervisor` — respawns ejected replicas with
  backoff, jitter, and a restart budget;
* :mod:`~repro.faults.policy` — deadline-aware retries and brown-out;
* :mod:`~repro.faults.scenarios` — faulty variants of the scenario zoo.

Only :mod:`~repro.faults.plan` loads eagerly: the plan types have no
dependencies, which is what lets the device plane (and anything below
the scheduler) import them without a cycle.  Everything else resolves
lazily on first attribute access (PEP 562).
"""

from importlib import import_module

from repro.faults.plan import (
    CRASH,
    DROP,
    FAULT_KINDS,
    HEARTBEAT_DELAY,
    RECOVER,
    SHM_ATTACH_FAIL,
    STALL,
    FaultEvent,
    FaultPlan,
    chaos_plan,
    replica_target,
    single_fault,
    target_index,
)

#: Lazily resolved exports: name → defining submodule.
_LAZY = {
    "FaultInjector": "repro.faults.injector",
    "ReplicaSupervisor": "repro.faults.supervisor",
    "RetryPolicy": "repro.faults.policy",
    "RetryExhausted": "repro.faults.policy",
    "BrownoutPolicy": "repro.faults.policy",
    "BrownoutController": "repro.faults.policy",
    "BrownoutShed": "repro.faults.policy",
    "FAULTY_SCENARIOS": "repro.faults.scenarios",
    "FaultyScenario": "repro.faults.scenarios",
    "faulty_replayer": "repro.faults.scenarios",
    "get_faulty": "repro.faults.scenarios",
}

__all__ = [
    "CRASH",
    "DROP",
    "FAULT_KINDS",
    "HEARTBEAT_DELAY",
    "RECOVER",
    "SHM_ATTACH_FAIL",
    "STALL",
    "FaultEvent",
    "FaultPlan",
    "chaos_plan",
    "replica_target",
    "single_fault",
    "target_index",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
