"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live frontend.

Every fault lands at a seam the serving plane already exposes — no
production code grows a test-only branch:

* **crash** → :meth:`Replica.kill` (SIGKILL for a process worker).
* **stall** → wraps the replica's ``run_parts`` instance attribute to
  sleep ``delay_s`` before delegating; the replica becomes a straggler
  the hedge watchdog and the ``EndpointTimeout`` patience loop already
  know how to ride out.
* **drop** → installs a :attr:`TransportEndpoint.intercept` that raises
  :class:`~repro.comm.transport.TransportError` on the await/reply path
  for the window (replies look lost; the worker stays alive, the
  transport stays in sync, the reply is drained once the window ends).
  Thread replicas have no transport, so drop degrades to a transient
  ``ReplicaUnavailable`` wrapper — a reroute without an ejection.
* **heartbeat_delay** → rebinds the replica's monitor ping to a
  constant-False for the window: heartbeats go dark while the replica
  keeps serving, forcing the false-positive-ejection path.
* **shm_attach_fail** → wraps :meth:`ReplicaPool.spawn_replica` to fail
  the next ``count`` respawn attempts for the target, exercising the
  supervisor's backoff and restart budget.

Events fire from daemon timers at their scripted offsets after
:meth:`FaultInjector.start`; tests may instead call :meth:`fire`
directly for fully synchronous, deterministic injection.  :meth:`stop`
cancels pending timers and unwinds every still-active wrapper.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List

from repro.comm.transport import TransportError
from repro.faults.plan import (
    CRASH,
    DROP,
    HEARTBEAT_DELAY,
    RECOVER,
    SHM_ATTACH_FAIL,
    STALL,
    FaultEvent,
    FaultPlan,
    target_index,
)
from repro.scheduler.pool import ReplicaUnavailable
from repro.trace.tracer import EVENT_FAULT, NULL_TRACER

#: How long a drop intercept naps before raising, so the patience loop
#: polls the window at a bounded rate instead of spinning.
_DROP_POLL_S = 0.005


class FaultInjector:
    """Arms a plan's events against one frontend's pool."""

    def __init__(
        self,
        frontend,
        plan: FaultPlan,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.frontend = frontend
        self.pool = frontend.pool
        self.plan = plan
        self.metrics = frontend.metrics
        self.tracer = getattr(frontend, "tracer", NULL_TRACER)
        self._clock = clock
        self._timers: List[threading.Timer] = []
        self._restores: List[Callable[[], None]] = []
        self._lock = threading.Lock()
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Arm one daemon timer per event at its scripted offset."""
        with self._lock:
            if self._started:
                raise RuntimeError("injector already started")
            self._started = True
            for event in self.plan.events:
                timer = threading.Timer(event.time_s, self.fire, args=(event,))
                timer.daemon = True
                self._timers.append(timer)
                timer.start()

    def stop(self) -> None:
        """Cancel pending events and unwind every active wrapper."""
        with self._lock:
            timers, self._timers = self._timers, []
            restores, self._restores = self._restores, []
        for timer in timers:
            timer.cancel()
        for restore in restores:
            restore()

    def __enter__(self) -> "FaultInjector":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- firing ----------------------------------------------------------------

    def fire(self, event: FaultEvent) -> None:
        """Apply one event now (timers land here; tests may call directly)."""
        handler = {
            CRASH: self._fire_crash,
            RECOVER: self._fire_recover,
            STALL: self._fire_stall,
            DROP: self._fire_drop,
            HEARTBEAT_DELAY: self._fire_heartbeat_delay,
            SHM_ATTACH_FAIL: self._fire_shm_attach_fail,
        }[event.kind]
        handler(event)
        self.metrics.counter("faults.injected").inc()
        self.metrics.counter(f"faults.{event.kind}").inc()
        self.tracer.emit(
            None, EVENT_FAULT,
            fault=event.kind, target=event.target, planned_t_s=event.time_s,
        )

    def _expire(self, duration_s: float, restore: Callable[[], None]) -> None:
        """Run ``restore`` when the window closes (and again-safe at stop)."""
        done = threading.Event()

        def once() -> None:
            if not done.is_set():
                done.set()
                restore()

        with self._lock:
            self._restores.append(once)
        if duration_s > 0:
            timer = threading.Timer(duration_s, once)
            timer.daemon = True
            with self._lock:
                self._timers.append(timer)
            timer.start()

    # -- handlers --------------------------------------------------------------

    def _fire_crash(self, event: FaultEvent) -> None:
        self.pool.replicas[target_index(event.target)].kill()

    def _fire_recover(self, event: FaultEvent) -> None:
        # Serving-plane recovery is the supervisor's job; a scripted
        # recover only makes sense for thread replicas (device-plane
        # compatibility) and is applied as revive + monitor reset.
        index = target_index(event.target)
        replica = self.pool.replicas[index]
        replica.revive()
        self.pool.monitors[index].rebind(replica.ping)

    def _fire_stall(self, event: FaultEvent) -> None:
        replica = self.pool.replicas[target_index(event.target)]
        original = replica.run_parts
        delay = event.delay_s

        def stalled(parts, width):
            time.sleep(delay)
            return original(parts, width)

        replica.run_parts = stalled

        def restore() -> None:
            if replica.run_parts is stalled:
                replica.run_parts = original

        self._expire(event.duration_s, restore)

    def _fire_drop(self, event: FaultEvent) -> None:
        index = target_index(event.target)
        replica = self.pool.replicas[index]
        until = self._clock() + event.duration_s
        endpoint = getattr(replica, "_endpoint", None)
        if endpoint is not None:

            def intercept() -> None:
                remaining = until - self._clock()
                if remaining > 0:
                    time.sleep(min(remaining, _DROP_POLL_S))
                    raise TransportError(f"fault: reply from {event.target} dropped")

            endpoint.intercept = intercept

            def restore() -> None:
                if endpoint.intercept is intercept:
                    endpoint.intercept = None

        else:
            original = replica.run_parts

            def dropped(parts, width):
                if self._clock() < until:
                    raise ReplicaUnavailable(
                        f"fault: message to {event.target} dropped"
                    )
                return original(parts, width)

            replica.run_parts = dropped

            def restore() -> None:
                if replica.run_parts is dropped:
                    replica.run_parts = original

        self._expire(event.duration_s, restore)

    def _fire_heartbeat_delay(self, event: FaultEvent) -> None:
        monitor = self.pool.monitors[target_index(event.target)]
        original = monitor.ping_fn

        def dark() -> bool:
            return False

        monitor.ping_fn = dark

        def restore() -> None:
            # The supervisor may have rebound the monitor to a respawned
            # replica inside the window — never clobber that.
            if monitor.ping_fn is dark:
                monitor.ping_fn = original

        self._expire(event.duration_s, restore)

    def _fire_shm_attach_fail(self, event: FaultEvent) -> None:
        pool = self.pool
        index = target_index(event.target)
        original = pool.spawn_replica
        budget = [event.count]

        def failing(i: int):
            if i == index and budget[0] > 0:
                budget[0] -= 1
                raise RuntimeError(
                    f"fault: shm attach failed for {event.target}"
                )
            return original(i)

        pool.spawn_replica = failing

        def restore() -> None:
            if pool.spawn_replica is failing:
                pool.spawn_replica = original

        self._expire(event.duration_s, restore)
