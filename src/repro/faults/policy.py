"""Degradation policies: deadline-aware retries and frontend brown-out.

Two policies the :class:`~repro.scheduler.frontend.ServingFrontend`
consults when the pool is unhealthy or overloaded:

* :class:`RetryPolicy` bounds the reroute loop.  Without one, a request
  whose replica dies is re-dispatched immediately and without limit
  (the legacy behaviour, still the default).  With one, each retry
  waits an exponential backoff — but never longer than the request's
  remaining deadline budget, and never more than ``max_retries`` times;
  exhaustion fails the request with :class:`RetryExhausted`.  Retries
  compose with the hedge watchdog rather than stacking on it: a
  rerouted leg keeps the original hedge arm, it never re-arms.

* :class:`BrownoutController` is the overload valve.  Driven by two
  pressure signals from the :class:`~repro.scheduler.telemetry.MetricsRegistry`
  (live queue depth and the deadline-miss EWMA), it trips with
  hysteresis: enter when *either* signal crosses its high threshold,
  exit only when *both* fall below their low thresholds and the mode
  has dwelt at least ``min_dwell_s``.  While engaged, the frontend
  sheds lowest-priority admissions first (:class:`BrownoutShed`) and
  clamps width selection to the narrowest width each SLA allows —
  trading answer quality for critical-tier deadline hits.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.scheduler.admission import CRITICAL_PRIORITY, AdmissionRejected
from repro.scheduler.pool import ReplicaUnavailable
from repro.scheduler.telemetry import MetricsRegistry
from repro.trace.tracer import (
    EVENT_BROWNOUT_ENTER,
    EVENT_BROWNOUT_EXIT,
    NULL_TRACER,
)


class RetryExhausted(ReplicaUnavailable):
    """A request burned its retry budget before any replica served it."""


class BrownoutShed(AdmissionRejected):
    """Rejected at admission because the frontend is in brown-out mode."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deadline-aware backoff for replica-failure reroutes.

    ``delay_for`` answers "may attempt N retry, and after how long?":
    ``None`` means give up, a float is the wait before re-dispatch.
    Critical-priority requests are never given up on (a late answer
    beats no answer — the admission plane's stance), but still back
    off so a flapping pool is not hammered.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.002
    backoff_factor: float = 2.0
    backoff_max_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff bounds must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )

    def delay_for(
        self, attempt: int, remaining_s: float, *, critical: bool = False
    ) -> Optional[float]:
        """Delay before retry ``attempt``, or ``None`` to give up.

        The wait never exceeds the request's remaining deadline budget —
        a retry scheduled past the deadline would only resolve as an
        expired failure anyway.
        """
        delay = self.backoff_s(attempt)
        if critical:
            return delay
        if attempt > self.max_retries or remaining_s <= 0:
            return None
        return min(delay, remaining_s)


@dataclass(frozen=True)
class BrownoutPolicy:
    """Thresholds for the overload valve (see :class:`BrownoutController`)."""

    enter_queue_depth: int = 64      # engage when pool pending >= this ...
    enter_miss_rate: float = 0.5     # ... or the miss EWMA >= this
    exit_queue_depth: int = 16       # disengage only when pending <= this ...
    exit_miss_rate: float = 0.2      # ... and the miss EWMA <= this
    min_dwell_s: float = 0.05        # ... and we dwelt at least this long
    shed_below_priority: int = CRITICAL_PRIORITY  # shed priorities < this
    clamp_width: bool = True         # narrow width selection while engaged

    def __post_init__(self) -> None:
        if self.exit_queue_depth > self.enter_queue_depth:
            raise ValueError("exit_queue_depth must not exceed enter_queue_depth")
        if self.exit_miss_rate > self.enter_miss_rate:
            raise ValueError("exit_miss_rate must not exceed enter_miss_rate")
        if self.min_dwell_s < 0:
            raise ValueError("min_dwell_s must be non-negative")


class BrownoutController:
    """Hysteresis state machine over the frontend's pressure signals.

    ``update`` is called on the submit path with the live signals and
    returns whether brown-out is engaged; transitions emit
    ``brownout.enter`` / ``brownout.exit`` trace events and count into
    ``frontend.brownout_enters`` / ``frontend.brownout_exits``.
    Thread-safe: many submitters may race one transition; exactly one
    wins it.
    """

    def __init__(
        self,
        policy: Optional[BrownoutPolicy] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        tracer=NULL_TRACER,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or BrownoutPolicy()
        self.metrics = metrics or MetricsRegistry()
        self.tracer = tracer
        self._clock = clock
        self._lock = threading.Lock()
        self._engaged = False
        self._since = 0.0

    @property
    def engaged(self) -> bool:
        with self._lock:
            return self._engaged

    def update(self, queue_depth: int, miss_rate: Optional[float]) -> bool:
        """Advance the state machine; returns the (possibly new) mode."""
        p = self.policy
        miss = 0.0 if miss_rate is None else miss_rate
        now = self._clock()
        with self._lock:
            if not self._engaged:
                if queue_depth >= p.enter_queue_depth or miss >= p.enter_miss_rate:
                    self._engaged = True
                    self._since = now
                    self.metrics.counter("frontend.brownout_enters").inc()
                    self.tracer.emit(
                        None, EVENT_BROWNOUT_ENTER,
                        queue_depth=int(queue_depth), miss_rate=miss,
                    )
            elif (
                queue_depth <= p.exit_queue_depth
                and miss <= p.exit_miss_rate
                and now - self._since >= p.min_dwell_s
            ):
                self._engaged = False
                self.metrics.counter("frontend.brownout_exits").inc()
                self.tracer.emit(
                    None, EVENT_BROWNOUT_EXIT,
                    queue_depth=int(queue_depth), miss_rate=miss,
                    dwell_s=now - self._since,
                )
            return self._engaged

    def should_shed(self, priority: int) -> bool:
        """Shed this admission?  Lowest priorities go first; critical never."""
        return self.engaged and priority < self.policy.shed_below_priority

    def status(self) -> Dict[str, object]:
        with self._lock:
            return {
                "engaged": self._engaged,
                "enters": self.metrics.counter("frontend.brownout_enters").value,
                "exits": self.metrics.counter("frontend.brownout_exits").value,
                "sheds": self.metrics.counter("frontend.brownout_sheds").value,
                "clamps": self.metrics.counter("frontend.brownout_clamped").value,
            }
