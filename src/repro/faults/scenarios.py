"""Faulty variants of the scenario zoo: traffic + a scripted incident.

A :class:`FaultyScenario` pairs a :class:`~repro.trace.scenarios.TraceSpec`
(reusing the zoo's generators, under a *new* name and seed so payload
streams stay distinct) with the :class:`~repro.faults.plan.FaultPlan`
that replays against it.  The variants register into
``trace.scenarios.EXTRA_SCENARIOS`` — deliberately *not* the pinned
``SCENARIOS`` — so the committed reference corpus and its CI
byte-comparison never see them.

The reference incidents:

* ``bursts_faulty`` — the acceptance incident: during a burst storm on
  four replicas, replica 1 and replica 2 are SIGKILLed mid-run and
  replica 3 stalls for a window.  A supervised frontend must lose zero
  requests and return to full capacity.
* ``multi_tenant_faulty`` — a grey-failure mix on the three-tenant
  blend: one replica's heartbeats go dark (false-positive ejection
  path) while another drops replies for a window (patience-loop path),
  under enough load that brown-out policies have sheddable traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.faults.plan import (
    CRASH,
    DROP,
    HEARTBEAT_DELAY,
    STALL,
    FaultEvent,
    FaultPlan,
    replica_target,
)
from repro.trace.scenarios import TraceSpec, register_scenario

#: Replica count the reference fault plans are scripted against.
FAULTY_REPLICAS = 4


@dataclass(frozen=True)
class FaultyScenario:
    """A traffic spec plus the incident scripted over it."""

    trace: TraceSpec
    faults: FaultPlan
    replicas: int = FAULTY_REPLICAS

    @property
    def name(self) -> str:
        return self.trace.name

    def meta(self) -> Dict[str, object]:
        meta = self.trace.meta()
        meta["faults"] = self.faults.to_json()
        meta["replicas"] = self.replicas
        return meta


def _bursts_faulty() -> FaultyScenario:
    trace = TraceSpec("bursts_faulty", "bursts", seed=21)
    # Kill two of four replicas mid-burst and stall a third: the
    # acceptance incident for the zero-lost + recovery-time fact.
    faults = FaultPlan([
        FaultEvent(0.35, replica_target(1), CRASH),
        FaultEvent(0.55, replica_target(2), CRASH),
        FaultEvent(0.45, replica_target(3), STALL,
                   duration_s=0.25, delay_s=0.02),
    ])
    return FaultyScenario(trace, faults)


def _multi_tenant_faulty() -> FaultyScenario:
    trace = TraceSpec("multi_tenant_faulty", "multi_tenant", seed=22)
    faults = FaultPlan([
        FaultEvent(0.30, replica_target(1), HEARTBEAT_DELAY, duration_s=0.2),
        FaultEvent(0.60, replica_target(2), DROP, duration_s=0.1),
        FaultEvent(0.85, replica_target(3), CRASH),
    ])
    return FaultyScenario(trace, faults)


FAULTY_SCENARIOS: Dict[str, FaultyScenario] = {
    scenario.name: scenario
    for scenario in (_bursts_faulty(), _multi_tenant_faulty())
}

for _scenario in FAULTY_SCENARIOS.values():
    register_scenario(_scenario.trace)
del _scenario


def get_faulty(name: str) -> FaultyScenario:
    try:
        return FAULTY_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown faulty scenario {name!r} "
            f"(known: {sorted(FAULTY_SCENARIOS)})"
        ) from None


def faulty_replayer(name: str):
    """A :class:`~repro.trace.replay.TraceReplayer` with the incident attached."""
    from repro.trace.replay import TraceReplayer

    scenario = get_faulty(name)
    return TraceReplayer(
        scenario.trace.generate(),
        name=scenario.name,
        duration_s=scenario.trace.duration_s,
        meta=scenario.meta(),
        faults=scenario.faults,
    )
