"""Self-healing: supervised respawn of ejected replicas.

The pool's heartbeat machinery *ejects* a dead replica — capacity is
lost until something puts a replacement back.  :class:`ReplicaSupervisor`
is that something: a background loop at heartbeat cadence that watches
the pool's health view and, per ejected slot,

1. respawns a replacement via :meth:`ReplicaPool.spawn_replica`
   (a fresh forked worker for the process backend; an in-place revive
   for threads), retrying with exponential backoff + deterministic
   jitter when the spawn itself fails;
2. enforces a **restart budget** (circuit breaker): a replica that dies
   more than ``restart_budget`` times within ``budget_window_s`` stays
   down, is counted in ``supervisor.gave_up`` and reported via
   :meth:`status` — flapping hardware must not eat the control plane;
3. **warms the replacement up** before it rejoins routing: one untimed
   forward per candidate width re-primes the worker-side plan compile
   (and ladder rungs) so the first real request never pays a compile
   stall — and so cold-start times never poison the width policy's
   calibrated EWMAs;
4. adopts it (:meth:`ReplicaPool.adopt` swaps the slot and rebinds the
   monitor) and invalidates the frontend's stale per-(replica, width)
   queues, then emits a ``replica.respawn`` trace event.

Shutdown is a graceful drain: :meth:`close` lets an in-flight respawn
finish, then stops the loop.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional

import numpy as np

from repro.trace.tracer import EVENT_RESPAWN, NULL_TRACER
from repro.utils.logging import get_logger
from repro.utils.rng import derive_seed, make_rng


@dataclass
class _SlotState:
    """Supervision state of one replica slot."""

    down: bool = False
    attempts: int = 0          # failed respawn attempts for the current death
    next_attempt_at: float = 0.0
    respawns: int = 0
    gave_up: bool = False
    deaths: Deque[float] = field(default_factory=deque)


class ReplicaSupervisor:
    """Watches a frontend's pool and puts ejected replicas back."""

    def __init__(
        self,
        frontend,
        *,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max_s: float = 1.0,
        jitter: float = 0.1,
        restart_budget: int = 3,
        budget_window_s: float = 30.0,
        warmup: bool = True,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if backoff_base_s < 0 or backoff_max_s < 0:
            raise ValueError("backoff bounds must be non-negative")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if restart_budget < 1:
            raise ValueError("restart_budget must be at least 1")
        self.frontend = frontend
        self.pool = frontend.pool
        self.metrics = frontend.metrics
        self.tracer = getattr(frontend, "tracer", NULL_TRACER)
        self.logger = get_logger("faults.supervisor")
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        self.jitter = jitter
        self.restart_budget = restart_budget
        self.budget_window_s = budget_window_s
        self.warmup = warmup
        self._clock = clock
        # Deterministic jitter: two supervisors with the same seed retry
        # on the same schedule (chaos runs stay reproducible).
        self._rng = make_rng(derive_seed(seed, "supervisor", "jitter"))
        self._slots: Dict[int, _SlotState] = {
            i: _SlotState() for i in range(len(self.pool.replicas))
        }
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ReplicaSupervisor":
        if self._thread is not None:
            raise RuntimeError("supervisor already started")
        self._thread = threading.Thread(
            target=self._run, name="replica-supervisor", daemon=True
        )
        self._thread.start()
        return self

    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Graceful drain: an in-flight respawn completes, then the loop stops."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def __enter__(self) -> "ReplicaSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- supervision loop ------------------------------------------------------

    def _run(self) -> None:
        interval = max(self.pool.heartbeat_interval_s, 1e-3)
        while not self._stop.wait(interval):
            self.poll()

    def poll(self) -> None:
        """One supervision pass (the loop body; tests may call directly)."""
        now = self._clock()
        for index, monitor in enumerate(self.pool.monitors):
            state = self._slots[index]
            if not monitor.declared_dead:
                state.down = False
                continue
            if state.gave_up:
                continue
            if not state.down:
                # Freshly observed death: open a respawn episode and
                # charge the restart budget's sliding window.
                state.down = True
                state.attempts = 0
                state.next_attempt_at = now
                state.deaths.append(now)
                while state.deaths and now - state.deaths[0] > self.budget_window_s:
                    state.deaths.popleft()
                if len(state.deaths) > self.restart_budget:
                    state.gave_up = True
                    self.metrics.counter("supervisor.gave_up").inc()
                    self.tracer.emit(
                        None, EVENT_RESPAWN,
                        replica=index, gave_up=True, deaths=len(state.deaths),
                    )
                    self.logger.error(
                        "replica %d died %d times within %.1fs; restart budget "
                        "exhausted, leaving it down",
                        index, len(state.deaths), self.budget_window_s,
                    )
                    continue
            if now < state.next_attempt_at:
                continue
            try:
                self._respawn(index)
            except Exception as exc:  # noqa: BLE001 - retried with backoff
                state.attempts += 1
                backoff = min(
                    self.backoff_base_s * self.backoff_factor ** (state.attempts - 1),
                    self.backoff_max_s,
                )
                backoff *= 1.0 + self.jitter * (2.0 * float(self._rng.random()) - 1.0)
                state.next_attempt_at = self._clock() + backoff
                self.metrics.counter("supervisor.respawn_failures").inc()
                self.logger.warning(
                    "respawn of replica %d failed (attempt %d): %s; next try in %.3fs",
                    index, state.attempts, exc, backoff,
                )
            else:
                state.down = False
                state.attempts = 0
                state.respawns += 1
                self.metrics.counter("supervisor.respawns").inc()

    def _respawn(self, index: int) -> None:
        fresh = self.pool.spawn_replica(index)
        if self.warmup:
            net = self.frontend.net
            x = np.zeros((1, net.in_channels, net.image_size, net.image_size))
            for spec in self.frontend.policy.candidates:
                # Untimed on purpose: a fresh worker's first forward pays
                # plan compilation, and observing that into the width
                # policy would bias every later latency prediction.
                fresh.run(x, spec.name)
        replaced = self.pool.adopt(index, fresh)
        self.frontend.invalidate_replica_queues(index)
        if replaced is not fresh:
            replaced.close()
        self.tracer.emit(
            None, EVENT_RESPAWN,
            replica=index, attempts=self._slots[index].attempts + 1,
        )
        self.logger.warning("replica %d respawned and rejoined routing", index)

    # -- reporting -------------------------------------------------------------

    def status(self) -> Dict[str, object]:
        return {
            "respawns": self.metrics.counter("supervisor.respawns").value,
            "respawn_failures": self.metrics.counter(
                "supervisor.respawn_failures"
            ).value,
            "gave_up": sorted(
                i for i, s in self._slots.items() if s.gave_up
            ),
            "down": sorted(i for i, s in self._slots.items() if s.down),
        }
