"""Model builders."""

from __future__ import annotations

from typing import Dict, Type

import numpy as np

from repro.models.base import ModelFamily
from repro.models.dynamic_dnn import DynamicDNN
from repro.models.fluid_dydnn import FluidDyDNN
from repro.models.static_dnn import StaticDNN
from repro.slimmable.spec import WidthSpec, paper_width_spec

FAMILIES: Dict[str, Type[ModelFamily]] = {
    StaticDNN.family_name: StaticDNN,
    DynamicDNN.family_name: DynamicDNN,
    FluidDyDNN.family_name: FluidDyDNN,
}


def build_model(
    family: str,
    width_spec: WidthSpec = None,
    *,
    rng: np.random.Generator,
    **net_kwargs,
) -> ModelFamily:
    """Build an untrained model of the given family (``static|dynamic|fluid``)."""
    if family not in FAMILIES:
        raise ValueError(f"unknown family {family!r}; expected one of {sorted(FAMILIES)}")
    return FAMILIES[family].create(width_spec or paper_width_spec(), rng=rng, **net_kwargs)
