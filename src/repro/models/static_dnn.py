"""Static DNN baseline.

A conventional monolithic model: only the full-width network is trained.
When width-partitioned over two devices, neither device's resident half is
certified to run standalone — the paper's Fig. 1b/1c failure cases.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import ModelFamily
from repro.slimmable.slim_net import SlimmableConvNet
from repro.slimmable.spec import WidthSpec, paper_width_spec
from repro.utils.rng import check_rng


class StaticDNN(ModelFamily):
    """Full-width-only model; distribution-unfriendly by construction."""

    family_name = "static"

    def __init__(self, net: SlimmableConvNet) -> None:
        full = net.width_spec.full().name
        super().__init__(net, certified_standalone=(), certified_combined=(full,))

    @classmethod
    def create(
        cls,
        width_spec: WidthSpec = None,
        *,
        rng: np.random.Generator,
        **net_kwargs,
    ) -> "StaticDNN":
        check_rng(rng, "StaticDNN.create")
        spec = width_spec or paper_width_spec()
        return cls(SlimmableConvNet(spec, rng=rng, **net_kwargs))
