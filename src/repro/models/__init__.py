"""Model families: Static DNN, Dynamic DNN and Fluid DyDNN (paper Fig. 1a)."""

from repro.models.base import ModelFamily
from repro.models.dynamic_dnn import DynamicDNN
from repro.models.fluid_dydnn import FluidDyDNN
from repro.models.static_dnn import StaticDNN
from repro.models.zoo import FAMILIES, build_model

__all__ = [
    "ModelFamily",
    "StaticDNN",
    "DynamicDNN",
    "FluidDyDNN",
    "FAMILIES",
    "build_model",
]
