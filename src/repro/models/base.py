"""Common interface for the three model families.

A model family wraps one :class:`~repro.slimmable.SlimmableConvNet` and a
*certification* record: which sub-networks its training procedure makes
usable standalone, and which combined modes are valid.  The distributed
runtime consults certifications when re-planning after a failure — a Static
DNN's surviving half is physically present on the device but uncertified, so
the system correctly declares failure (paper Fig. 1b/1c).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.nn.context import ForwardContext
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.slimmable.slim_net import SlimmableConvNet, SubNetworkView
from repro.slimmable.spec import SubNetSpec, WidthSpec


class ModelFamily:
    """Base class for Static / Dynamic / Fluid model families."""

    family_name: str = "base"

    def __init__(
        self,
        net: SlimmableConvNet,
        certified_standalone: Iterable[str],
        certified_combined: Iterable[str],
    ) -> None:
        self.net = net
        self.width_spec: WidthSpec = net.width_spec
        self.certified_standalone: Tuple[str, ...] = tuple(certified_standalone)
        self.certified_combined: Tuple[str, ...] = tuple(certified_combined)
        self._validate_certifications()

    def _validate_certifications(self) -> None:
        known = {spec.name for spec in self.width_spec.all_specs()}
        for name in (*self.certified_standalone, *self.certified_combined):
            if name not in known:
                raise ValueError(f"certified sub-network {name!r} is not in the width spec")

    # -- sub-network access ---------------------------------------------------

    def spec(self, name: str) -> SubNetSpec:
        return self.width_spec.find(name)

    def view(self, name: str) -> SubNetworkView:
        return self.net.view(self.spec(name))

    def full_view(self) -> SubNetworkView:
        return self.net.view(self.width_spec.full())

    def is_standalone_certified(self, name: str) -> bool:
        return name in self.certified_standalone

    def is_combined_certified(self, name: str) -> bool:
        return name in self.certified_combined

    # -- evaluation --------------------------------------------------------------

    def evaluate(
        self,
        name: str,
        dataset: ArrayDataset,
        batch_size: int = 256,
    ) -> float:
        """Top-1 accuracy of sub-network ``name`` on ``dataset`` (in [0, 1])."""
        view = self.view(name)
        view.train(False)
        correct = 0
        for start in range(0, len(dataset), batch_size):
            x, y = dataset[np.arange(start, min(start + batch_size, len(dataset)))]
            # Inference never runs backward: a non-recording context skips
            # the activation tape entirely.
            logits = view.forward(x, ForwardContext(recording=False))
            correct += int((logits.argmax(axis=1) == y).sum())
        return correct / len(dataset)

    def evaluate_all(
        self, dataset: ArrayDataset, batch_size: int = 256
    ) -> Dict[str, float]:
        """Accuracy of every sub-network in the family's width spec."""
        return {
            spec.name: self.evaluate(spec.name, dataset, batch_size)
            for spec in self.width_spec.all_specs()
        }

    def state_dict(self) -> Dict[str, np.ndarray]:
        return self.net.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.net.load_state_dict(state)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(standalone={list(self.certified_standalone)}, "
            f"combined={list(self.certified_combined)})"
        )
