"""Dynamic DNN baseline (incremental training, the paper's reference [3]).

Nested sub-networks 25% ⊂ 50% ⊂ 75% ⊂ 100% share weights; all *lower*
sub-networks are standalone-certified, but the upper slices exist only as
parts of the dense combined weights — they were never trained to run alone,
so a Master failure (which strands the Worker's upper half) kills the
system, as in the paper's Fig. 1c.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import ModelFamily
from repro.slimmable.slim_net import SlimmableConvNet
from repro.slimmable.spec import WidthSpec, paper_width_spec
from repro.utils.rng import check_rng


class DynamicDNN(ModelFamily):
    """Slimmable model with nested (lower-anchored) sub-networks."""

    family_name = "dynamic"

    def __init__(self, net: SlimmableConvNet) -> None:
        lower = [spec.name for spec in net.width_spec.lower_family()]
        super().__init__(net, certified_standalone=lower, certified_combined=lower)

    @classmethod
    def create(
        cls,
        width_spec: WidthSpec = None,
        *,
        rng: np.random.Generator,
        **net_kwargs,
    ) -> "DynamicDNN":
        check_rng(rng, "DynamicDNN.create")
        spec = width_spec or paper_width_spec()
        return cls(SlimmableConvNet(spec, rng=rng, **net_kwargs))
