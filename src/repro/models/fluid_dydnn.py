"""Fluid Dynamic DNN — the paper's contribution.

On top of the Dynamic DNN's nested lower sub-networks, the *upper* slices
(upper-25% = channels 50–75%, upper-50% = channels 50–100%) are fine-tuned
by nested incremental training (Algorithm 1, implemented in
:mod:`repro.training.nested_incremental`) to run standalone while remaining
combinable with the lower 50% into the 75%/100% models.  Every sub-network
is therefore standalone-certified: either device survives alone, and with
both devices online the system can run High-Throughput mode (two
independent sub-networks on different inputs) or High-Accuracy mode (the
combined 100% model on the same input).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import ModelFamily
from repro.slimmable.slim_net import SlimmableConvNet
from repro.slimmable.spec import WidthSpec, paper_width_spec
from repro.utils.rng import check_rng


class FluidDyDNN(ModelFamily):
    """Slimmable model whose upper sub-networks are independently usable."""

    family_name = "fluid"

    def __init__(self, net: SlimmableConvNet) -> None:
        lower = [spec.name for spec in net.width_spec.lower_family()]
        upper = [spec.name for spec in net.width_spec.upper_family()]
        super().__init__(
            net,
            certified_standalone=lower + upper,
            certified_combined=lower,
        )

    @classmethod
    def create(
        cls,
        width_spec: WidthSpec = None,
        *,
        rng: np.random.Generator,
        **net_kwargs,
    ) -> "FluidDyDNN":
        check_rng(rng, "FluidDyDNN.create")
        spec = width_spec or paper_width_spec()
        return cls(SlimmableConvNet(spec, rng=rng, **net_kwargs))

    def independent_pair(self) -> tuple:
        """The (lower, upper) sub-network names used by High-Throughput mode.

        Paper §II-B: in HT mode the Master runs the lower 50% and the Worker
        the upper 50% on *different* inputs in parallel.
        """
        split = self.width_spec.split
        lower = self.width_spec.lower(split).name
        upper = self.width_spec.upper(self.width_spec.max_width - split).name
        return lower, upper
