"""Stochastic gradient descent with optional momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.optim.base import Optimizer
from repro.nn.parameter import Parameter


class SGD(Optimizer):
    """SGD with classical momentum.

    Update rule (per parameter)::

        g = grad + weight_decay * w
        v = momentum * v + g
        w = w - lr * v
    """

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if not p.requires_grad:
                continue
            grad = p.effective_grad()
            if self.weight_decay:
                # Respect the freeze mask for the decay term too.
                decay = self.weight_decay * p.data
                if p.grad_mask is not None:
                    decay = decay * p.grad_mask
                grad = grad + decay
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data -= self.lr * update
            p.bump_version()
