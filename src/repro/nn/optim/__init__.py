"""Optimizers and learning-rate schedules."""

from repro.nn.optim.adam import Adam
from repro.nn.optim.base import Optimizer
from repro.nn.optim.scheduler import ConstantLR, CosineLR, LRScheduler, StepLR
from repro.nn.optim.sgd import SGD

__all__ = ["Optimizer", "SGD", "Adam", "LRScheduler", "StepLR", "CosineLR", "ConstantLR"]
