"""Adam optimizer."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.optim.base import Optimizer
from repro.nn.parameter import Parameter


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if not p.requires_grad:
                continue
            grad = p.effective_grad()
            if self.weight_decay:
                decay = self.weight_decay * p.data
                if p.grad_mask is not None:
                    decay = decay * p.grad_mask
                grad = grad + decay
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if p.grad_mask is not None:
                # Moment estimates can leak tiny updates into frozen entries
                # (e.g. stale moments from before a mask change); clamp them.
                update = update * p.grad_mask
            p.data -= self.lr * update
            p.bump_version()
