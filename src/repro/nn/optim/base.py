"""Optimizer base class.

Optimizers consume ``Parameter.effective_grad()`` (gradient after the freeze
mask) so incremental training's per-slice freezing works with every
optimizer for free.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.nn.parameter import Parameter


class Optimizer:
    """Base class: holds the parameter list and the current learning rate."""

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
