"""Learning-rate schedules."""

from __future__ import annotations

import math

from repro.nn.optim.base import Optimizer


class LRScheduler:
    """Base class: mutates ``optimizer.lr`` on each ``step()``."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        lr = self.compute_lr(self.epoch)
        if lr <= 0:
            raise ValueError(f"schedule produced non-positive lr {lr}")
        self.optimizer.lr = lr
        return lr

    def compute_lr(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(LRScheduler):
    """Cosine annealing from ``base_lr`` to ``min_lr`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, min_lr: float = 1e-5) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        if min_lr <= 0:
            raise ValueError("min_lr must be positive")
        self.t_max = t_max
        self.min_lr = min_lr

    def compute_lr(self, epoch: int) -> float:
        t = min(epoch, self.t_max)
        cos = (1 + math.cos(math.pi * t / self.t_max)) / 2
        return self.min_lr + (self.base_lr - self.min_lr) * cos


class ConstantLR(LRScheduler):
    """Keeps the learning rate fixed (explicit no-op schedule)."""

    def compute_lr(self, epoch: int) -> float:
        return self.base_lr
