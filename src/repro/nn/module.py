"""Module base class: the spine of the numpy DNN framework.

Modules implement explicit ``forward``/``backward`` passes (no autograd
tape).  Both take a :class:`~repro.nn.context.ForwardContext`:
``forward(x, ctx)`` records whatever the matching ``backward`` needs on the
context's activation tape; ``backward(grad, ctx)`` reads it back, must
(a) accumulate parameter gradients and (b) return the gradient w.r.t. the
module input.  Modules therefore hold only parameters and hyper-parameters
— never per-call state — so one weight store can serve any number of
concurrent forward passes, each with its own context.  This matters doubly
for slimmable layers, which alias weight storage between sub-networks.

For single-caller convenience a thin compatibility shim remains:
``module(x)`` with no context creates an *implicit* context and remembers
it, and ``module.backward(grad)`` with no context resolves that implicit
context.  Concurrent callers (the engine's inference sessions, the
micro-batching runtime) must pass explicit contexts; the implicit slot is
deliberately last-call-wins and not thread-safe.  Explicit-context calls
never read or write the implicit slot, so explicit and implicit usage of
one module do not corrupt each other's tapes; if you passed a context to
``forward``, pass the same one to ``backward`` — a bare ``backward(grad)``
always resolves the last *implicit* forward, not the last forward overall.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.context import ForwardContext
from repro.nn.parameter import Parameter


class Module:
    """Base class for all network components."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # -- registration ------------------------------------------------------

    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        if name in self._parameters:
            raise ValueError(f"duplicate parameter name {name!r}")
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        if name in self._modules:
            raise ValueError(f"duplicate module name {name!r}")
        self._modules[name] = module
        return module

    def __setattr__(self, name: str, value) -> None:
        # Auto-register Parameters and Modules assigned as attributes.
        if isinstance(value, Parameter):
            params = self.__dict__.get("_parameters")
            if params is None:
                raise AttributeError("call Module.__init__ before assigning parameters")
            params[name] = value
        elif isinstance(value, Module):
            modules = self.__dict__.get("_modules")
            if modules is None:
                raise AttributeError("call Module.__init__ before assigning sub-modules")
            modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ----------------------------------------------------------

    def parameters(self) -> List[Parameter]:
        """All parameters in definition order (depth-first, no duplicates)."""
        seen: set = set()
        out: List[Parameter] = []
        for _, p in self.named_parameters():
            if id(p) not in seen:
                seen.add(id(p))
                out.append(p)
        return out

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    # -- train/eval and gradient state --------------------------------------

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- state I/O -----------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = [k for k in own if k not in state]
        unexpected = [k for k in state if k not in own]
        if strict and (missing or unexpected):
            raise KeyError(f"state mismatch: missing={missing}, unexpected={unexpected}")
        for name, param in own.items():
            if name in state:
                if state[name].shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"checkpoint {state[name].shape} vs model {param.data.shape}"
                    )
                np.copyto(param.data, state[name])
                param.bump_version()

    # -- compute -------------------------------------------------------------

    def _forward_ctx(self, ctx: Optional[ForwardContext]) -> ForwardContext:
        """Resolve the context for a forward pass.

        With no explicit context a fresh implicit one is created and
        remembered so a later ``backward()`` without a context finds it.
        """
        if ctx is None:
            ctx = ForwardContext()
            object.__setattr__(self, "_implicit_ctx", ctx)
        return ctx

    def _backward_ctx(self, ctx: Optional[ForwardContext]) -> ForwardContext:
        """Resolve the context for a backward pass (implicit shim)."""
        if ctx is not None:
            return ctx
        implicit = getattr(self, "_implicit_ctx", None)
        if implicit is None:
            raise RuntimeError("backward called before forward (no context)")
        return implicit

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        raise NotImplementedError

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        return self.forward(x, ctx)

    def __repr__(self) -> str:
        child_repr = ", ".join(f"{k}={v!r}" for k, v in self._modules.items())
        return f"{type(self).__name__}({child_repr})"


class Sequential(Module):
    """Chain of modules executed in order; backward runs in reverse."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers: List[Module] = []
        for i, layer in enumerate(layers):
            self.register_module(str(i), layer)
            self.layers.append(layer)

    def append(self, layer: Module) -> "Sequential":
        self.register_module(str(len(self.layers)), layer)
        self.layers.append(layer)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        ctx = self._forward_ctx(ctx)
        for layer in self.layers:
            x = layer.forward(x, ctx)
        return x

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        ctx = self._backward_ctx(ctx)
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output, ctx)
        return grad_output

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential({inner})"


class Identity(Module):
    """No-op module (useful as a placeholder in partition plans)."""

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        return x

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        return grad_output
