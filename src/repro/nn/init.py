"""Weight initializers.

All initializers take an explicit generator (repo-wide determinism rule) and
return new arrays; layers decide where to store them.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        fan_out, fan_in = shape
    elif len(shape) == 4:  # Conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        raise ValueError(f"unsupported weight shape {shape}")
    return fan_in, fan_out


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He/Kaiming uniform init (appropriate for ReLU networks)."""
    fan_in, _ = _fan_in_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform init."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def bias_uniform(shape: Tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """PyTorch-style bias init: uniform in +-1/sqrt(fan_in)."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    bound = 1.0 / np.sqrt(fan_in)
    return rng.uniform(-bound, bound, size=shape)
