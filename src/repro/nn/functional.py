"""Stateless numerical kernels used by the layer classes.

The convolution kernels use the im2col/col2im formulation: a convolution is
lowered to a single GEMM, and its backward pass is two GEMMs plus a col2im
scatter.  For the paper's model sizes (28x28 inputs, <=16 channels) this is
comfortably fast in numpy.

All kernels operate on NCHW-ordered arrays and are dtype-polymorphic: they
compute in whatever float dtype the caller hands them.  The layer classes
pick that dtype from the global :class:`~repro.utils.dtypes.DtypePolicy`
(float64 by default; float32 on the inference fast path) via
:func:`cast_compute`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.dtypes import compute_dtype

#: Convolution backends a compiled plan (and the CLI/config layer) may
#: select.  ``im2col`` is the default and bitwise-identical to the eager
#: path; ``im2col-blocked`` tiles the same gather over output rows (still
#: bitwise); ``shifted-gemm`` accumulates kernel-column offset GEMMs over a
#: rolling row panel — no ``(rows, C*k*k)`` column matrix and no strided
#: per-window gather, but a *relaxed* equality contract (allclose, not
#: bitwise: the GEMM reduction is re-associated across kernel columns).
CONV_BACKENDS = ("im2col", "im2col-blocked", "shifted-gemm")

#: L2-resident target for one blocked-gather source band, in bytes.
IM2COL_BLOCK_TARGET_BYTES = 128 * 1024

#: The shifted-GEMM relaxed-equality contract, per compute dtype: outputs
#: must be allclose to the im2col path within these tolerances (the only
#: divergence is reduction re-association across kernel columns, so the
#: bound is a few ulps of accumulated rounding — measured maxima sit well
#: inside these).  Tests and benches assert through this one table.
SHIFTED_GEMM_TOLERANCE = {
    "float32": {"rtol": 1e-4, "atol": 1e-5},
    "float64": {"rtol": 1e-9, "atol": 1e-12},
}


def shifted_gemm_tolerance(dtype) -> dict:
    """``{rtol, atol}`` of the shifted-GEMM contract for ``dtype``."""
    name = np.dtype(dtype).name
    try:
        return SHIFTED_GEMM_TOLERANCE[name]
    except KeyError:
        raise ValueError(f"no shifted-GEMM tolerance defined for dtype {name!r}")


def check_conv_backend(name: str) -> str:
    """Validate a conv-backend name (the one place the list is enforced)."""
    if name not in CONV_BACKENDS:
        raise ValueError(
            f"unknown conv backend {name!r}; expected one of {CONV_BACKENDS}"
        )
    return name


def cast_compute(training: bool, *arrays: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Cast arrays to the policy's compute dtype for the given mode.

    An array already in the compute dtype and C-contiguous is returned
    as-is (same object, no copy and no numpy dispatch) — on the serving
    hot path that is every activation after the first layer, so only
    genuinely mismatched inputs pay the ``ascontiguousarray`` conversion.
    """
    dtype = compute_dtype(training)
    return tuple(
        a if a.dtype == dtype and a.flags.c_contiguous
        else np.ascontiguousarray(a, dtype=dtype)
        for a in arrays
    )


def conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def sliding_windows(
    x: np.ndarray, kh: int, kw: int, stride: int, out_h: int, out_w: int
) -> np.ndarray:
    """Read-only ``(N, C, out_h, out_w, kh, kw)`` window view of ``x``.

    The one copy of the stride arithmetic behind im2col (both variants)
    and window pooling — keep it that way: the compiled plans' bitwise
    equality with the eager path rests on both reading windows through
    identical views.
    """
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(x.shape[0], x.shape[1], out_h, out_w, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int, padding: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold sliding windows of ``x`` into a matrix.

    Args:
        x: input of shape ``(N, C, H, W)``.
        kernel: ``(kh, kw)`` window size.
        stride: window stride (same in both dims).
        padding: zero padding (same on all sides).

    Returns:
        ``(cols, (out_h, out_w))`` where ``cols`` has shape
        ``(N * out_h * out_w, C * kh * kw)``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_out_size(h, kh, stride, padding)
    out_w = conv_out_size(w, kw, stride, padding)

    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))

    windows = sliding_windows(x, kh, kw, stride, out_h, out_w)
    # -> (N, out_h, out_w, C, kh, kw) -> (N*out_h*out_w, C*kh*kw)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    # The reshape of the transposed strided view almost always had to copy
    # (and that copy is C-contiguous); only the rare viewable cases (e.g.
    # 1x1 kernels) still need an explicit contiguous conversion.
    if not cols.flags.c_contiguous:
        cols = np.ascontiguousarray(cols)
    return cols, (out_h, out_w)


def im2col_into(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: int,
    out: np.ndarray,
    row_block: Optional[int] = None,
) -> Tuple[int, int]:
    """Allocation-free :func:`im2col` for pre-padded inputs.

    ``x`` must already include any zero padding (compiled plans keep a
    persistent padded arena buffer whose border never changes).  The unfold
    is written straight into ``out`` — a contiguous ``(N*oh*ow, C*kh*kw)``
    workspace buffer — via a strided-view copy, so the call allocates
    nothing.  Returns ``(out_h, out_w)``.

    ``row_block`` (the ``im2col-blocked`` backend) tiles the gather over
    output rows so each tile's source band — ``C x (row_block*stride+kh)``
    input rows — stays cache-resident while its ``kh*kw`` overlapping
    window reads replay.  The copy is element-for-element the same gather
    in a different visit order, so the result is bitwise identical.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_out_size(h, kh, stride, 0)
    out_w = conv_out_size(w, kw, stride, 0)
    windows = sliding_windows(x, kh, kw, stride, out_h, out_w)
    # out is contiguous, so the 6-d reshape is a view; copyto then performs
    # the same (N, oh, ow, C, kh, kw) gather im2col's transpose-reshape does.
    src = windows.transpose(0, 2, 3, 1, 4, 5)
    dst = out.reshape(n, out_h, out_w, c, kh, kw)
    if row_block is None or row_block >= out_h:
        np.copyto(dst, src)
    else:
        for r0 in range(0, out_h, row_block):
            r1 = min(r0 + row_block, out_h)
            np.copyto(dst[:, r0:r1], src[:, r0:r1])
    return out_h, out_w


def im2col_row_block(
    channels: int,
    padded_w: int,
    kernel: int,
    stride: int,
    itemsize: int,
    target_bytes: int = IM2COL_BLOCK_TARGET_BYTES,
) -> int:
    """Output-row tile size whose gather source band fits ``target_bytes``.

    A tile of ``b`` output rows reads an input band of
    ``channels x (b*stride + kernel - stride) x padded_w`` elements; solve
    for the largest ``b >= 1`` that keeps the band within the target.
    """
    band_row = channels * padded_w * itemsize
    if band_row <= 0:
        return 1
    rows = target_bytes // band_row - (kernel - stride)
    return max(1, int(rows // stride) if stride > 1 else int(rows))


# -- shifted-GEMM convolution -------------------------------------------------
#
# A stride-1 convolution over a zero-padded input is a sum of kernel-offset
# products.  Flatten each channel's padded image to one long row (plus a
# shared inter-image tail so offset reads never leave the buffer) and the
# windows at kernel offset (i, j) become the *contiguous* slice starting at
# ``i*padded_w + j`` — so the convolution is k (kernel-column) GEMMs over a
# rolling row panel, accumulated in place, with the valid output pixels
# sitting in a strided view of the wide result.  No ``(rows, C*k*k)`` column
# matrix is ever built and nothing is gathered per window; the only copies
# are whole-row memcpys into the panel.  The price is a relaxed equality
# contract: the reduction over kernel columns is re-associated, so outputs
# are allclose — not bitwise-equal — to the im2col path.


def shifted_tail(kernel: int, padded_w: int) -> int:
    """Extra zero elements a flattened arena needs past its last image."""
    return (kernel - 1) * padded_w + (kernel - 1)


def shifted_panel_fill(
    xflat: np.ndarray, panel: np.ndarray, kernel: int, padded_w: int, shift: int
) -> None:
    """Fill the ``(C*kh, L)`` row panel for kernel-column ``shift``.

    Row ``ci*kh + i`` is the contiguous slice
    ``xflat[ci, i*padded_w + shift :][:L]`` — one memcpy per (channel, kernel
    row): the strided per-window gather the im2col backends pay is gone.
    """
    c_kh, length = panel.shape
    kh = kernel
    view = panel.reshape(c_kh // kh, kh, length)
    for i in range(kh):
        start = i * padded_w + shift
        np.copyto(view[:, i, :], xflat[:, start : start + length])


def shifted_gemm_conv(
    xflat: np.ndarray,
    w_panels: np.ndarray,
    panel: np.ndarray,
    wide: np.ndarray,
    scratch: np.ndarray,
    kernel: int,
    padded_w: int,
) -> np.ndarray:
    """Sum of ``kernel`` column-offset GEMMs accumulated in place into ``wide``.

    Args:
        xflat: ``(C, N*Hp*Wp + tail)`` flattened padded input arena.
        w_panels: ``(kw, C_out, C*kh)`` packed weights — ``w_panels[j]`` is
            the GEMM operand for kernel column ``j``.
        panel: ``(C*kh, L)`` rolling row-panel buffer, refilled per column.
        wide: ``(C_out, L)`` wide output arena (valid pixels are a strided
            subset; garbage columns fall in padding/tail positions).
        scratch: ``(C_out, L)`` accumulation scratch.
        kernel / padded_w: offset geometry.

    All operands are C-contiguous, so every GEMM runs copy-free in BLAS and
    the call allocates nothing.
    """
    for j in range(kernel):
        shifted_panel_fill(xflat, panel, kernel, padded_w, j)
        if j == 0:
            np.dot(w_panels[0], panel, out=wide)
        else:
            np.dot(w_panels[j], panel, out=scratch)
            wide += scratch
    return wide


def bias_act_into(
    src: np.ndarray, bias: np.ndarray, out: np.ndarray, relu: bool = True
) -> np.ndarray:
    """Broadcast-add a leading-axis bias into ``out``, optionally ReLU'd.

    ``src``/``out`` are channel-major ``(C_out, ...)`` views (either may be
    strided); used by the shifted-GEMM epilogue to land the valid window of
    the wide GEMM result straight in the next layer's arena.
    """
    np.add(src, bias.reshape((-1,) + (1,) * (src.ndim - 1)), out=out)
    if relu:
        np.maximum(out, 0.0, out=out)
    return out


def conv2d_shifted(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, padding: int
) -> np.ndarray:
    """Reference stride-1 convolution via shifted GEMMs (allocating).

    The self-contained form of the kernel trio above, for tests and eager
    comparisons: allocates its own arena/panel/wide buffers per call.  Use
    a compiled plan with ``conv_backend="shifted-gemm"`` for the
    allocation-free serving path.
    """
    n, c, h, w = x.shape
    c_out, c_in, kh, kw = weight.shape
    if c != c_in:
        raise ValueError(f"input has {c} channels, weight expects {c_in}")
    if kh != kw:
        raise ValueError("shifted-GEMM expects square kernels")
    hp, wp = h + 2 * padding, w + 2 * padding
    out_h = conv_out_size(h, kh, 1, padding)
    out_w = conv_out_size(w, kw, 1, padding)
    block = hp * wp
    tail = shifted_tail(kh, wp)
    xflat = np.zeros((c, n * block + tail), dtype=x.dtype)
    interior = xflat[:, : n * block].reshape(c, n, hp, wp)[
        :, :, padding : padding + h, padding : padding + w
    ]
    np.copyto(interior, x.transpose(1, 0, 2, 3))
    w_panels = np.ascontiguousarray(
        weight.transpose(3, 0, 1, 2).reshape(kw, c_out, c_in * kh)
    )
    length = n * block
    panel = np.empty((c * kh, length), dtype=x.dtype)
    wide = np.empty((c_out, length), dtype=x.dtype)
    scratch = np.empty((c_out, length), dtype=x.dtype)
    shifted_gemm_conv(xflat, w_panels, panel, wide, scratch, kh, wp)
    valid = wide.reshape(c_out, n, hp, wp)[:, :, :out_h, :out_w]
    y = valid.transpose(1, 0, 2, 3) + bias[None, :, None, None]
    return np.ascontiguousarray(y)


def gemm_bias(x: np.ndarray, weight: np.ndarray, bias: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Fused ``x @ weight.T + bias`` written in place into ``out``.

    The linear epilogue of a compiled plan: one BLAS GEMM into an arena
    buffer followed by an in-place broadcast bias add — bitwise identical
    to the eager ``x @ w.T + b`` but with zero temporaries.
    """
    np.dot(x, weight.T, out=out)
    out += bias
    return out


def gemm_bias_relu(
    cols: np.ndarray, weight: np.ndarray, bias: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """Fused conv epilogue: GEMM -> bias -> ReLU, all in place into ``out``.

    Operates on the im2col/GEMM layout ``(rows, C_out)``; ReLU commutes
    with the later NHWC->NCHW transpose, so applying it here is bitwise
    identical to the eager conv -> ReLU sequence.
    """
    np.dot(cols, weight.T, out=out)
    out += bias
    np.maximum(out, 0.0, out=out)
    return out


def maxpool2d_into(x: np.ndarray, kernel: int, stride: int, out: np.ndarray) -> np.ndarray:
    """Allocation-free inference max pooling: window max written into ``out``.

    Folds the window as ``kernel**2`` pairwise in-place ``np.maximum``
    passes over strided offset views — no flattened window copy, no index
    bookkeeping, and each pass is a simple 4-d elementwise kernel (an
    order of magnitude faster than a strided window reduction).  Max is
    exact, so the result is bitwise identical to the eager
    reshape-then-max path regardless of fold order.
    """
    n, c, h, w = x.shape
    out_h = conv_out_size(h, kernel, stride, 0)
    out_w = conv_out_size(w, kernel, stride, 0)
    np.copyto(out, x[:, :, : 1 + stride * (out_h - 1) : stride, : 1 + stride * (out_w - 1) : stride])
    for i in range(kernel):
        for j in range(kernel):
            if i == 0 and j == 0:
                continue
            shifted = x[
                :, :, i : i + 1 + stride * (out_h - 1) : stride,
                j : j + 1 + stride * (out_w - 1) : stride,
            ]
            np.maximum(out, shifted, out=out)
    return out


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back to image layout."""
    n, c, h, w = x_shape
    kh, kw = kernel
    out_h = conv_out_size(h, kh, stride, padding)
    out_w = conv_out_size(w, kw, stride, padding)

    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)

    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols6[:, :, :, :, i, j]

    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, stride: int, padding: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Convolution forward pass.

    Args:
        x: ``(N, C_in, H, W)`` input.
        weight: ``(C_out, C_in, kh, kw)`` kernels.
        bias: ``(C_out,)`` bias.

    Returns:
        ``(y, cols)`` where ``y`` is ``(N, C_out, out_h, out_w)`` and ``cols``
        is the im2col matrix cached for the backward pass.
    """
    n = x.shape[0]
    c_out, c_in, kh, kw = weight.shape
    if x.shape[1] != c_in:
        raise ValueError(f"input has {x.shape[1]} channels, weight expects {c_in}")
    cols, (out_h, out_w) = im2col(x, (kh, kw), stride, padding)
    w_mat = weight.reshape(c_out, c_in * kh * kw)
    y = cols @ w_mat.T + bias
    y = y.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)
    return np.ascontiguousarray(y), cols


def conv2d_backward(
    grad_y: np.ndarray,
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    weight: np.ndarray,
    stride: int,
    padding: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convolution backward pass.

    Returns ``(grad_x, grad_weight, grad_bias)``.
    """
    n, c_out = grad_y.shape[0], grad_y.shape[1]
    c_out_w, c_in, kh, kw = weight.shape
    if c_out != c_out_w:
        raise ValueError(f"grad has {c_out} channels, weight has {c_out_w}")
    # (N, C_out, oh, ow) -> (N*oh*ow, C_out)
    grad_mat = grad_y.transpose(0, 2, 3, 1).reshape(-1, c_out)
    grad_bias = grad_mat.sum(axis=0)
    grad_weight = (grad_mat.T @ cols).reshape(c_out, c_in, kh, kw)
    w_mat = weight.reshape(c_out, c_in * kh * kw)
    grad_cols = grad_mat @ w_mat
    grad_x = col2im(grad_cols, x_shape, (kh, kw), stride, padding)
    return grad_x, grad_weight, grad_bias


def maxpool2d_forward(
    x: np.ndarray, kernel: int, stride: int, need_indices: bool = True
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Max pooling forward; returns ``(y, argmax)`` with flat window indices.

    ``need_indices=False`` (inference: no backward will run) skips the
    argmax/gather entirely and reuses the plan path's pairwise
    :func:`maxpool2d_into` fold — an order of magnitude faster than the
    flattened window reduction, and bitwise identical to it (max is exact,
    so the fold order cannot matter).
    """
    n, c, h, w = x.shape
    out_h = conv_out_size(h, kernel, stride, 0)
    out_w = conv_out_size(w, kernel, stride, 0)
    if not need_indices:
        out = np.empty((n, c, out_h, out_w), dtype=x.dtype)
        return maxpool2d_into(x, kernel, stride, out), None
    windows = sliding_windows(x, kernel, kernel, stride, out_h, out_w)
    flat = windows.reshape(n, c, out_h, out_w, kernel * kernel)
    argmax = flat.argmax(axis=-1)
    y = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
    return np.ascontiguousarray(y), argmax


def maxpool2d_backward(
    grad_y: np.ndarray,
    argmax: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Max pooling backward: route gradients to winning window positions.

    The scatter-add is a flat ``np.bincount`` over raveled destination
    indices — argmax positions can collide when ``stride < kernel``, and
    bincount is far faster than the fancy-indexed ``np.add.at`` it replaces.
    """
    n, c, h, w = x_shape
    out_h, out_w = grad_y.shape[2], grad_y.shape[3]
    # Decompose flat window index into (di, dj) offsets.
    di = argmax // kernel
    dj = argmax % kernel
    rows = np.arange(out_h)[:, None] * stride + di
    cols = np.arange(out_w)[None, :] * stride + dj
    plane = (
        np.arange(n)[:, None, None, None] * c + np.arange(c)[None, :, None, None]
    ) * (h * w)
    flat_idx = plane + rows * w + cols
    grad_x = np.bincount(
        flat_idx.ravel(), weights=grad_y.ravel(), minlength=n * c * h * w
    )
    return grad_x.reshape(x_shape).astype(grad_y.dtype, copy=False)


def relu_forward(
    x: np.ndarray, need_mask: bool = True
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """ReLU forward; the mask is computed only when a backward pass needs it."""
    y = np.maximum(x, 0)
    return y, (x > 0) if need_mask else None


def relu_backward(grad_y: np.ndarray, mask: np.ndarray) -> np.ndarray:
    return grad_y * mask


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
