"""Per-call forward/backward state: the activation tape.

A :class:`ForwardContext` carries everything one forward pass produces that
the matching backward pass consumes.  Modules never cache activations on
``self`` — ``forward(x, ctx)`` writes into the context's *tape* and
``backward(grad, ctx)`` reads it back — so a model is a pure function of
``(parameters, input, context)``.  Parameters stay shared and read-only
during inference, which is what lets any number of concurrent
:class:`~repro.engine.session.InferenceSession`\\ s serve one weight store
with zero copies.

The context has two compartments:

* **tape** — per-module activation state recorded by ``forward`` when
  ``recording`` is True (im2col columns, ReLU masks, input shapes).
  Inference contexts are created with ``recording=False`` so layers skip
  both the bookkeeping and, where possible, the computation (e.g. the ReLU
  mask is never materialised).
* **bindings** — call-scoped configuration installed by the *caller* before
  the pass runs.  Slimmable views bind their spec's channel slices here, so
  two threads can run different sub-network widths against the same
  :class:`~repro.slimmable.slim_net.SlimmableConvNet` without touching the
  container's ``set_active`` state.

Both compartments are keyed by module identity.  A context must not be
shared between concurrent calls; it is cheap to create one per request.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ForwardContext:
    """Activation tape plus call-scoped bindings for one forward/backward."""

    __slots__ = ("recording", "_tape", "_bindings")

    def __init__(self, *, recording: bool = True) -> None:
        self.recording = recording
        self._tape: Dict[Any, Dict[str, Any]] = {}
        self._bindings: Dict[Any, Dict[str, Any]] = {}

    # -- tape (written by forward, read by backward) -------------------------

    def put(self, module, **state: Any) -> None:
        """Record ``module``'s activation state (no-op unless recording)."""
        if self.recording:
            self._tape[module] = state

    def get(self, module) -> Optional[Dict[str, Any]]:
        """The module's recorded state, or None if nothing was recorded."""
        return self._tape.get(module)

    def require(self, module) -> Dict[str, Any]:
        """The module's recorded state; raises if forward never recorded any."""
        state = self._tape.get(module)
        if state is None:
            raise RuntimeError(
                f"backward called before forward: no recorded state for "
                f"{type(module).__name__} (was the context created with "
                f"recording=False?)"
            )
        return state

    # -- bindings (written by the caller, read by forward) --------------------

    def bind(self, module, **bindings: Any) -> None:
        """Install call-scoped configuration for ``module`` (e.g. slices)."""
        slot = self._bindings.get(module)
        if slot is None:
            slot = self._bindings[module] = {}
        slot.update(bindings)

    def bound(self, module, name: str, default: Any = None) -> Any:
        """Read a binding for ``module``, falling back to ``default``."""
        slot = self._bindings.get(module)
        if slot is None:
            return default
        return slot.get(name, default)

    # -- lifecycle -------------------------------------------------------------

    def clear(self) -> None:
        self._tape.clear()
        self._bindings.clear()

    def __repr__(self) -> str:
        return (
            f"ForwardContext(recording={self.recording}, "
            f"tape={len(self._tape)} modules, bindings={len(self._bindings)})"
        )
