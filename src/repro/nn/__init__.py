"""A from-scratch numpy DNN framework.

This package substitutes for PyTorch in the reproduction (see DESIGN.md §2):
explicit forward/backward modules, im2col convolutions, SGD/Adam optimizers
and npz checkpointing — everything the paper's training algorithms need.
"""

from repro.nn import functional
from repro.nn.checkpoint import load_model, load_state, save_model, save_state
from repro.nn.context import ForwardContext
from repro.nn.layers import Conv2d, Dropout, Flatten, GlobalAvgPool2d, Linear, MaxPool2d, ReLU, Tanh
from repro.nn.loss import MSELoss, SoftmaxCrossEntropy
from repro.nn.metrics import accuracy, confusion_matrix, per_class_accuracy, top_k_accuracy
from repro.nn.module import Identity, Module, Sequential
from repro.nn.optim import SGD, Adam, ConstantLR, CosineLR, LRScheduler, Optimizer, StepLR
from repro.nn.parameter import Parameter
from repro.nn.plan import InferencePlan, PackedWeightCache, compile_width_plans
from repro.nn.workspace import BufferSpec, Workspace, WorkspacePool

__all__ = [
    "functional",
    "ForwardContext",
    "Parameter",
    "Module",
    "Sequential",
    "Identity",
    "Conv2d",
    "Linear",
    "ReLU",
    "Tanh",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "SoftmaxCrossEntropy",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "LRScheduler",
    "StepLR",
    "CosineLR",
    "ConstantLR",
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "save_state",
    "load_state",
    "save_model",
    "load_model",
    "InferencePlan",
    "PackedWeightCache",
    "compile_width_plans",
    "BufferSpec",
    "Workspace",
    "WorkspacePool",
]
