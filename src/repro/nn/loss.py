"""Loss functions.

Losses are not Modules and carry no per-call state: they return
``(loss_value, grad_wrt_logits)`` in one call, and the trainer feeds the
returned gradient straight into ``model.backward(grad, ctx)`` together with
the :class:`~repro.nn.context.ForwardContext` the forward pass recorded
into.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn import functional as F


class SoftmaxCrossEntropy:
    """Softmax + mean cross-entropy over integer class labels."""

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, classes), got {logits.shape}")
        if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
            raise ValueError(f"labels shape {labels.shape} incompatible with logits {logits.shape}")
        n, num_classes = logits.shape
        if labels.min() < 0 or labels.max() >= num_classes:
            raise ValueError("labels out of range")
        # One shifted-exp pass yields both log-probs (for the loss) and
        # probs (for the gradient), with log_softmax-grade stability.
        rows = np.arange(n)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        denom = exp.sum(axis=1, keepdims=True)
        loss = -(shifted[rows, labels] - np.log(denom[:, 0])).mean()
        grad = exp / denom
        grad[rows, labels] -= 1.0
        grad /= n
        return float(loss), grad


class MSELoss:
    """Mean squared error against dense targets (utility, used in tests)."""

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        diff = pred - target
        loss = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.size
        return loss, grad
