"""Shared-memory arenas: one copy of the weights for N worker processes.

Thread-backed serving (:class:`~repro.engine.session.InferenceSession`,
:class:`~repro.scheduler.pool.ReplicaPool`) shares parameters by aliasing
numpy storage inside one interpreter — which means all compute fights over
one GIL.  This module is the cross-*process* analogue: parameter storage
moves into ``multiprocessing.shared_memory`` segments, so forked worker
processes map the **same physical pages** (zero weight copies, N
interpreters, N GILs) while the parent keeps mutating the very arrays its
optimizers always held.

Three building blocks:

* :class:`ShmArena` — a bump allocator over one shared-memory segment;
  ``alloc`` hands out ndarray views backed by the segment.
* :class:`SharedParameterStore` — :meth:`SharedParameterStore.share` walks
  a module's parameters, moves every ``Parameter.data`` into one arena and
  backs every ``Parameter.version`` counter by an ``int64`` slot in the
  same segment.  The version table is the **cross-process invalidation
  signal**: a worker's :class:`~repro.nn.plan.PackedWeightCache` reads
  ``Parameter.version`` straight from shared memory, so a parent-side
  optimizer step invalidates every worker's packed blocks with no message.
  Only the creating process may write (bump versions / update weights);
  workers are readers — the single-writer rule is what makes the unlocked
  version compare safe.
* :class:`ShmRing` — a byte ring over a segment region used to carry
  request/response rows between frontend and worker without pickling:
  the sender places rows, ships ``(offset, shape, dtype)`` in a small
  control message, and the receiver maps a view at that offset.

Lifecycle: every segment created here registers in a process-local
registry with ``atexit`` + ``SIGTERM`` unlink hooks, so repeated serve
runs and crashed workers never leak ``/dev/shm`` entries.  The hooks are
pid-guarded: a forked worker inheriting them never unlinks segments it
does not own.  Unlinking removes the name only — live mappings (the
parent's parameter arrays) stay valid until the process exits.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
import uuid
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Prefix of every segment this module creates (``/dev/shm/<prefix>...``).
SEGMENT_PREFIX = "repro-shm-"
#: Sub-prefixes distinguishing weight arenas from per-worker I/O rings in
#: ``/dev/shm`` listings (the zero-copy bench counts weight segments only).
WEIGHT_SEGMENT_TAG = "w"
RING_SEGMENT_TAG = "r"

_ALIGN = 64  # bump-allocator alignment (cache line; also any dtype's itemsize)


def _segment_name(tag: str) -> str:
    return f"{SEGMENT_PREFIX}{tag}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


def list_segments(tag: Optional[str] = None) -> List[str]:
    """Names of live ``/dev/shm`` segments created by this module.

    The leak-regression tests count these before/after serve runs.  Falls
    back to the in-process registry on platforms without ``/dev/shm``.
    """
    prefix = SEGMENT_PREFIX + (f"{tag}-" if tag else "")
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        with _registry_lock:
            entries = [name for name, _ in _created_segments]
    return sorted(e for e in entries if e.startswith(prefix))


# -- creation registry + cleanup hooks ----------------------------------------

_registry_lock = threading.Lock()
_created_segments: List[Tuple[str, int]] = []  # (name, creator pid)
_hooks_installed = False
_previous_sigterm = None


def _unlink_quietly(name: str) -> None:
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    # On CPython 3.11 attaching registers with the resource tracker and
    # ``unlink`` unregisters — balanced, so no explicit untrack here.
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    try:
        segment.close()
    except BufferError:
        pass  # exported views keep the mapping alive; the name is gone


def unlink_created_segments() -> int:
    """Unlink every segment this process created; returns how many existed.

    Safe to call repeatedly; forked children are no-ops (pid guard).
    """
    pid = os.getpid()
    with _registry_lock:
        mine = [name for name, creator in _created_segments if creator == pid]
        _created_segments[:] = [
            (name, creator) for name, creator in _created_segments if creator != pid
        ]
    removed = 0
    for name in mine:
        before = name in list_segments()
        _unlink_quietly(name)
        removed += int(before)
    return removed


def _sigterm_cleanup(signum, frame):
    unlink_created_segments()
    previous = _previous_sigterm
    if callable(previous):
        previous(signum, frame)
    else:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)


def install_cleanup_hooks() -> None:
    """Idempotently install the atexit + SIGTERM unlink backstops.

    Only effective from the main thread (signal API restriction); callers
    on other threads still get the ``atexit`` hook.
    """
    global _hooks_installed, _previous_sigterm
    with _registry_lock:
        if _hooks_installed:
            return
        _hooks_installed = True
    atexit.register(unlink_created_segments)
    if threading.current_thread() is threading.main_thread():
        previous = signal.getsignal(signal.SIGTERM)
        if previous is not _sigterm_cleanup:
            _previous_sigterm = previous if previous not in (
                signal.SIG_DFL, signal.SIG_IGN, None
            ) else None
            signal.signal(signal.SIGTERM, _sigterm_cleanup)


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Opt this segment out of the stdlib resource tracker.

    We own segment lifecycle explicitly (registry + hooks); leaving the
    tracker registered would double-unlink and print spurious leak
    warnings at interpreter exit.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
    except Exception:  # noqa: BLE001 - best-effort across CPython versions
        pass


def create_segment(tag: str, nbytes: int) -> shared_memory.SharedMemory:
    """Create a registered, tracker-opted-out shared-memory segment."""
    if nbytes <= 0:
        raise ValueError("segment size must be positive")
    install_cleanup_hooks()
    segment = shared_memory.SharedMemory(
        create=True, size=nbytes, name=_segment_name(tag)
    )
    _untrack(segment)
    with _registry_lock:
        _created_segments.append((segment.name, os.getpid()))
    return segment


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment by name (spawn-mode workers)."""
    segment = shared_memory.SharedMemory(name=name)
    _untrack(segment)  # attachers never own the name
    return segment


# -- arena --------------------------------------------------------------------


class ShmArena:
    """Bump allocator over one shared-memory segment.

    ``alloc`` returns ndarray views into the segment; the layout (offset,
    shape, dtype per allocation) is recorded so another process can
    rebuild identical views with :meth:`view`.
    """

    def __init__(self, segment: shared_memory.SharedMemory, *, owner: bool) -> None:
        self.segment = segment
        self.owner = owner
        self._cursor = 0

    @classmethod
    def create(cls, nbytes: int, tag: str = WEIGHT_SEGMENT_TAG) -> "ShmArena":
        return cls(create_segment(tag, nbytes), owner=True)

    @classmethod
    def attach(cls, name: str) -> "ShmArena":
        return cls(attach_segment(name), owner=False)

    @property
    def name(self) -> str:
        return self.segment.name

    @property
    def nbytes(self) -> int:
        return self.segment.size

    def alloc(self, shape: Sequence[int], dtype) -> Tuple[np.ndarray, int]:
        """Carve out one aligned array; returns ``(view, offset)``."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        offset = -(-self._cursor // _ALIGN) * _ALIGN
        if offset + nbytes > self.segment.size:
            raise MemoryError(
                f"arena {self.name} exhausted: need {nbytes} bytes at {offset}, "
                f"segment holds {self.segment.size}"
            )
        self._cursor = offset + nbytes
        return self.view(offset, shape, dtype), offset

    def view(self, offset: int, shape: Sequence[int], dtype) -> np.ndarray:
        """An ndarray over ``segment[offset:]`` with the given shape/dtype."""
        return np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=self.segment.buf, offset=offset)

    def unlink(self) -> None:
        """Remove the segment name (creator only); live views stay valid."""
        if self.owner:
            _unlink_quietly(self.name)

    def __repr__(self) -> str:
        return f"ShmArena({self.name}, {self.nbytes} bytes, cursor={self._cursor})"


# -- shared parameters --------------------------------------------------------


class SharedParameterStore:
    """One module's parameters, storage and version counters in shared memory.

    Created by :meth:`share` in the serving parent **before** workers fork;
    forked workers inherit the mapping (true sharing — the pages are
    ``MAP_SHARED``), and spawn-mode workers can :meth:`attach` by name.
    Either way there is exactly **one** weight segment regardless of the
    number of workers — the zero-copy fact the multiproc bench measures.
    """

    def __init__(
        self,
        arena: ShmArena,
        layout: List[Tuple[str, int, Tuple[int, ...], str]],
        versions_offset: int,
    ) -> None:
        self.arena = arena
        self.layout = layout
        self.versions_offset = versions_offset

    @classmethod
    def share(cls, module) -> "SharedParameterStore":
        """Move ``module``'s parameter storage + version counters into shm.

        Idempotent per module (repeated calls return the existing store).
        The parameter arrays keep their values, dtypes and shapes — only
        the backing memory changes — so optimizers, packed caches and
        checkpoints keep working unchanged.
        """
        existing = getattr(module, "_shm_parameter_store", None)
        if existing is not None:
            return existing
        params = list(module.named_parameters())
        if not params:
            raise ValueError("module has no parameters to share")
        data_bytes = sum(
            -(-p.data.nbytes // _ALIGN) * _ALIGN for _, p in params
        )
        version_bytes = len(params) * np.dtype(np.int64).itemsize
        arena = ShmArena.create(data_bytes + version_bytes + _ALIGN, WEIGHT_SEGMENT_TAG)
        versions, versions_offset = arena.alloc((len(params),), np.int64)
        layout: List[Tuple[str, int, Tuple[int, ...], str]] = []
        for i, (name, param) in enumerate(params):
            view, offset = arena.alloc(param.data.shape, param.data.dtype)
            np.copyto(view, param.data)
            param.data = view
            versions[i] = param.version
            param.attach_version_slot(versions[i : i + 1])
            layout.append((name, offset, tuple(param.data.shape), param.data.dtype.name))
        store = cls(arena, layout, versions_offset)
        module._shm_parameter_store = store
        return store

    @classmethod
    def attach(cls, module, segment_name: str, layout, versions_offset: int) -> "SharedParameterStore":
        """Map ``module``'s parameters onto an existing shared store.

        Spawn-mode worker entry: the module is freshly built (same
        architecture), then every parameter's storage is replaced by the
        shared view.  Workers are read-only — they never bump versions.
        """
        arena = ShmArena.attach(segment_name)
        params = dict(module.named_parameters())
        versions = arena.view(versions_offset, (len(layout),), np.int64)
        for i, (name, offset, shape, dtype) in enumerate(layout):
            param = params[name]
            if tuple(param.data.shape) != tuple(shape):
                raise ValueError(
                    f"parameter {name!r} shape {param.data.shape} does not match "
                    f"shared layout {tuple(shape)}"
                )
            param.data = arena.view(offset, shape, dtype)
            param.attach_version_slot(versions[i : i + 1])
        store = cls(arena, list(layout), versions_offset)
        module._shm_parameter_store = store
        return store

    @property
    def segment_name(self) -> str:
        return self.arena.name

    def describe(self) -> Dict:
        """JSON-friendly layout (what a spawn-mode worker needs to attach)."""
        return {
            "segment": self.segment_name,
            "versions_offset": self.versions_offset,
            "layout": [list(entry) for entry in self.layout],
        }

    def unlink(self) -> None:
        self.arena.unlink()


def ensure_shared_parameters(model) -> SharedParameterStore:
    """Share the underlying net's parameters (idempotent model-level entry)."""
    net = getattr(model, "net", model)
    return SharedParameterStore.share(net)


# -- I/O ring -----------------------------------------------------------------


class ShmRing:
    """A byte ring over one region of a shared segment.

    Carries request/response rows across the process boundary: the writer
    :meth:`place`\\ s an array (contiguous bytes, wrapping to the region
    start when the tail cannot hold it), ships the returned offset in a
    control message, and the reader maps :meth:`view` at that offset.

    The serving protocol keeps **at most one batch in flight per ring**
    (the replica's transport lock serialises request/reply), so the ring
    needs no head/tail handshake — the cursor only has to avoid splitting
    one placement across the wrap point.
    """

    def __init__(self, segment: shared_memory.SharedMemory, offset: int, nbytes: int) -> None:
        if nbytes <= 0:
            raise ValueError("ring needs a positive capacity")
        self.segment = segment
        self.base = offset
        self.capacity = nbytes
        self._cursor = 0

    def place(self, array: np.ndarray) -> int:
        """Copy ``array``'s bytes into the ring; returns the absolute offset."""
        array = np.ascontiguousarray(array)
        if array.nbytes > self.capacity:
            raise MemoryError(
                f"{array.nbytes} bytes exceed the ring capacity {self.capacity}"
            )
        aligned = -(-self._cursor // _ALIGN) * _ALIGN
        if aligned + array.nbytes > self.capacity:
            aligned = 0  # wrap: placements are always contiguous
        offset = self.base + aligned
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=self.segment.buf, offset=offset)
        np.copyto(view, array)
        self._cursor = aligned + array.nbytes
        return offset

    def place_parts(self, parts: Sequence[np.ndarray], dtype) -> Tuple[int, int]:
        """Scatter per-request row groups into one contiguous placement.

        Returns ``(offset, rows)``.  The parts are written back-to-back
        (casting to ``dtype``), exactly the layout one stacked batch would
        have — the reader maps a single ``(rows, *part_shape)`` view.
        """
        dtype = np.dtype(dtype)
        rows = sum(p.shape[0] for p in parts)
        tail = parts[0].shape[1:]
        row_nbytes = int(np.prod(tail, dtype=np.int64)) * dtype.itemsize
        total = rows * row_nbytes
        if total > self.capacity:
            raise MemoryError(f"{total} bytes exceed the ring capacity {self.capacity}")
        aligned = -(-self._cursor // _ALIGN) * _ALIGN
        if aligned + total > self.capacity:
            aligned = 0
        offset = self.base + aligned
        batch = np.ndarray((rows,) + tuple(tail), dtype=dtype, buffer=self.segment.buf, offset=offset)
        at = 0
        for part in parts:
            k = part.shape[0]
            np.copyto(batch[at : at + k], part)  # casts to the ring dtype
            at += k
        self._cursor = aligned + total
        return offset, rows

    def view(self, offset: int, shape: Sequence[int], dtype) -> np.ndarray:
        """Map the placement at absolute ``offset`` (reader side)."""
        return np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=self.segment.buf, offset=offset)
