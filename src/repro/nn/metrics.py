"""Classification metrics."""

from __future__ import annotations

from typing import Dict

import numpy as np


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy in [0, 1]."""
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2D, got {logits.shape}")
    if labels.shape[0] != logits.shape[0]:
        raise ValueError("batch size mismatch")
    if logits.shape[0] == 0:
        raise ValueError("empty batch")
    pred = logits.argmax(axis=1)
    return float((pred == labels).mean())


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Top-k accuracy in [0, 1]."""
    if k <= 0 or k > logits.shape[1]:
        raise ValueError(f"k must be in [1, {logits.shape[1]}], got {k}")
    top_k = np.argsort(-logits, axis=1)[:, :k]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(hits.mean())


def confusion_matrix(logits: np.ndarray, labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Row = true class, column = predicted class."""
    pred = logits.argmax(axis=1)
    cm = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(cm, (labels, pred), 1)
    return cm


def per_class_accuracy(cm: np.ndarray) -> Dict[int, float]:
    """Per-class recall from a confusion matrix; classes with no samples map to nan."""
    out: Dict[int, float] = {}
    for cls in range(cm.shape[0]):
        total = cm[cls].sum()
        out[cls] = float(cm[cls, cls] / total) if total else float("nan")
    return out
