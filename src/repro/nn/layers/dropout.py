"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import check_rng


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    At train time each activation is zeroed with probability ``p`` and the
    survivors are scaled by ``1/(1-p)`` so that eval mode is the identity.
    """

    def __init__(self, p: float, *, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        check_rng(rng, "Dropout")
        self.p = p
        self.rng = rng
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
