"""Inverted dropout."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.context import ForwardContext
from repro.nn.module import Module
from repro.utils.rng import check_rng


class Dropout(Module):
    """Inverted dropout: active only in training mode.

    At train time each activation is zeroed with probability ``p`` and the
    survivors are scaled by ``1/(1-p)`` so that eval mode is the identity.
    The mask drawn at forward time is recorded on the context (``None``
    when forward was the identity); like every layer, backward raises if
    the context holds no recorded forward state.
    """

    def __init__(self, p: float, *, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        check_rng(rng, "Dropout")
        self.p = p
        self.rng = rng

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        ctx = self._forward_ctx(ctx)
        if not self.training or self.p == 0.0:
            ctx.put(self, mask=None)
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep) / keep
        ctx.put(self, mask=mask)
        return x * mask

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        ctx = self._backward_ctx(ctx)
        mask = ctx.require(self)["mask"]
        if mask is None:  # eval mode or p == 0: forward was the identity
            return grad_output
        return grad_output * mask

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
