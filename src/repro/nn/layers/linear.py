"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.context import ForwardContext
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import check_rng


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` over ``(N, in_features)`` inputs."""

    def __init__(self, in_features: int, out_features: int, *, rng: np.random.Generator) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature counts must be positive")
        check_rng(rng, "Linear")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng), name="weight")
        self.bias = Parameter(init.bias_uniform((out_features,), in_features, rng), name="bias")

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        ctx = self._forward_ctx(ctx)
        if x.ndim != 2:
            raise ValueError(f"Linear expects (N, features), got shape {x.shape}")
        if x.shape[1] != self.in_features:
            raise ValueError(f"expected {self.in_features} features, got {x.shape[1]}")
        x, w, b = F.cast_compute(self.training, x, self.weight.data, self.bias.data)
        ctx.put(self, x=x)
        return x @ w.T + b

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        ctx = self._backward_ctx(ctx)
        x = ctx.require(self)["x"]
        self.weight.accumulate_grad(grad_output.T @ x)
        self.bias.accumulate_grad(grad_output.sum(axis=0))
        return grad_output @ self.weight.data

    def flops_per_image(self) -> int:
        return 2 * self.in_features * self.out_features

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"
