"""Shape-manipulation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.context import ForwardContext
from repro.nn.module import Module


class Flatten(Module):
    """Flatten all dims after the batch dim: ``(N, ...) -> (N, prod(...))``."""

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        ctx = self._forward_ctx(ctx)
        ctx.put(self, x_shape=x.shape)
        return x.reshape(x.shape[0], -1)

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        ctx = self._backward_ctx(ctx)
        return grad_output.reshape(ctx.require(self)["x_shape"])

    def __repr__(self) -> str:
        return "Flatten()"
