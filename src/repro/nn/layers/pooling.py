"""Spatial pooling layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.context import ForwardContext
from repro.nn.module import Module


class MaxPool2d(Module):
    """Max pooling with square windows (no padding)."""

    def __init__(self, kernel_size: int, stride: int = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        ctx = self._forward_ctx(ctx)
        y, argmax = F.maxpool2d_forward(
            x, self.kernel_size, self.stride, need_indices=ctx.recording
        )
        ctx.put(self, argmax=argmax, x_shape=x.shape)
        return y

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        ctx = self._backward_ctx(ctx)
        state = ctx.require(self)
        return F.maxpool2d_backward(
            grad_output, state["argmax"], state["x_shape"], self.kernel_size, self.stride
        )

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2d(Module):
    """Average over the spatial dimensions: ``(N, C, H, W) -> (N, C)``."""

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        ctx = self._forward_ctx(ctx)
        ctx.put(self, x_shape=x.shape)
        return x.mean(axis=(2, 3))

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        ctx = self._backward_ctx(ctx)
        x_shape = ctx.require(self)["x_shape"]
        n, c, h, w = x_shape
        scale = 1.0 / (h * w)
        return np.broadcast_to(grad_output[:, :, None, None], x_shape) * scale

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"
