"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module


class MaxPool2d(Module):
    """Max pooling with square windows (no padding)."""

    def __init__(self, kernel_size: int, stride: int = None) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError("kernel_size must be positive")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._x_shape = None
        self._argmax = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        y, self._argmax = F.maxpool2d_forward(x, self.kernel_size, self.stride)
        return y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._argmax is None:
            raise RuntimeError("backward called before forward")
        return F.maxpool2d_backward(grad_output, self._argmax, self._x_shape, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2d(Module):
    """Average over the spatial dimensions: ``(N, C, H, W) -> (N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._x_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        n, c, h, w = self._x_shape
        scale = 1.0 / (h * w)
        return np.broadcast_to(grad_output[:, :, None, None], self._x_shape) * scale

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"
