"""Activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module


class ReLU(Module):
    """Elementwise rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        y, self._mask = F.relu_forward(x)
        return y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return F.relu_backward(grad_output, self._mask)

    def __repr__(self) -> str:
        return "ReLU()"


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._y = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._y**2)

    def __repr__(self) -> str:
        return "Tanh()"
