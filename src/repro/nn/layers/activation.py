"""Activation layers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.context import ForwardContext
from repro.nn.module import Module


class ReLU(Module):
    """Elementwise rectified linear unit."""

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        ctx = self._forward_ctx(ctx)
        y, mask = F.relu_forward(x, need_mask=ctx.recording)
        ctx.put(self, mask=mask)
        return y

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        ctx = self._backward_ctx(ctx)
        return F.relu_backward(grad_output, ctx.require(self)["mask"])

    def __repr__(self) -> str:
        return "ReLU()"


class Tanh(Module):
    """Elementwise hyperbolic tangent."""

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        ctx = self._forward_ctx(ctx)
        y = np.tanh(x)
        ctx.put(self, y=y)
        return y

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        ctx = self._backward_ctx(ctx)
        y = ctx.require(self)["y"]
        return grad_output * (1.0 - y**2)

    def __repr__(self) -> str:
        return "Tanh()"
