"""Standard (non-slimmable) 2D convolution layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.context import ForwardContext
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import check_rng


class Conv2d(Module):
    """2D convolution over NCHW inputs.

    Args:
        in_channels: input channel count.
        out_channels: number of kernels.
        kernel_size: square kernel side.
        stride: spatial stride.
        padding: zero padding on all sides.
        rng: generator for weight init.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        *,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("channel counts must be positive")
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid kernel/stride/padding")
        check_rng(rng, "Conv2d")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_uniform(shape, rng), name="weight")
        fan_in = in_channels * kernel_size * kernel_size
        self.bias = Parameter(init.bias_uniform((out_channels,), fan_in, rng), name="bias")

    def forward(self, x: np.ndarray, ctx: Optional[ForwardContext] = None) -> np.ndarray:
        ctx = self._forward_ctx(ctx)
        x_shape = x.shape
        x, w, b = F.cast_compute(self.training, x, self.weight.data, self.bias.data)
        y, cols = F.conv2d_forward(x, w, b, self.stride, self.padding)
        ctx.put(self, cols=cols, x_shape=x_shape)
        return y

    def backward(
        self, grad_output: np.ndarray, ctx: Optional[ForwardContext] = None
    ) -> np.ndarray:
        ctx = self._backward_ctx(ctx)
        state = ctx.require(self)
        grad_x, grad_w, grad_b = F.conv2d_backward(
            grad_output,
            state["cols"],
            state["x_shape"],
            self.weight.data,
            self.stride,
            self.padding,
        )
        self.weight.accumulate_grad(grad_w)
        self.bias.accumulate_grad(grad_b)
        return grad_x

    def flops_per_image(self, in_h: int, in_w: int) -> int:
        """Multiply-accumulate count for one image (used by the cost model)."""
        out_h = F.conv_out_size(in_h, self.kernel_size, self.stride, self.padding)
        out_w = F.conv_out_size(in_w, self.kernel_size, self.stride, self.padding)
        macs = out_h * out_w * self.out_channels * self.in_channels * self.kernel_size**2
        return 2 * macs

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding})"
        )
