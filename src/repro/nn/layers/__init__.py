"""Layer catalogue for the numpy DNN framework."""

from repro.nn.layers.activation import ReLU, Tanh
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.linear import Linear
from repro.nn.layers.pooling import GlobalAvgPool2d, MaxPool2d
from repro.nn.layers.reshape import Flatten

__all__ = [
    "Conv2d",
    "Linear",
    "ReLU",
    "Tanh",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
]
