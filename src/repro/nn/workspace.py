"""Workspace arenas: preallocated scratch buffers for compiled plans.

A compiled :class:`~repro.nn.plan.InferencePlan` knows every intermediate
shape its forward pass will produce, so the per-request im2col columns,
GEMM outputs, activations and logits can live in buffers allocated once
and reused forever.  A :class:`Workspace` is one such buffer set; a
:class:`WorkspacePool` hands workspaces out to concurrent serving threads
so K in-flight requests never share scratch memory *and* never allocate:
each thread checks a workspace out, runs the plan into it, and checks it
back in.

The pool grows on demand — a new concurrency high-water mark allocates
one more workspace — and then reaches a steady state where
:meth:`WorkspacePool.checkout` is a lock-protected list pop.
``created``/``checkouts`` counters make the "no steady-state allocations"
property assertable in tests.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class BufferSpec:
    """One named arena buffer a plan needs: shape, dtype, zero-init flag.

    ``zeroed`` buffers are cleared at allocation time and their border
    regions are never written afterwards — that is how plans keep conv
    padding zeros alive across requests without a per-call ``np.pad``.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str
    zeroed: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("buffer needs a name")
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"buffer {self.name!r} has non-positive dims {self.shape}")

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize


class Workspace:
    """One thread's scratch buffer set, allocated once from buffer specs."""

    def __init__(self, specs: Sequence[BufferSpec]) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        for spec in specs:
            if spec.name in self._buffers:
                raise ValueError(f"duplicate buffer name {spec.name!r}")
            alloc = np.zeros if spec.zeroed else np.empty
            self._buffers[spec.name] = alloc(spec.shape, dtype=spec.dtype)

    def buffer(self, name: str) -> np.ndarray:
        return self._buffers[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self._buffers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())

    def __repr__(self) -> str:
        return f"Workspace({len(self._buffers)} buffers, {self.nbytes} bytes)"


class WorkspacePool:
    """Thread-safe checkout pool of identical workspaces for one plan."""

    def __init__(self, specs: Sequence[BufferSpec], *, prealloc: int = 1) -> None:
        if prealloc < 0:
            raise ValueError("prealloc must be non-negative")
        self.specs: Tuple[BufferSpec, ...] = tuple(specs)
        self._lock = threading.Lock()
        self._free = [Workspace(self.specs) for _ in range(prealloc)]
        self.created = len(self._free)   # workspaces ever allocated
        self.checkouts = 0               # successful acquires (steady-state: no allocs)

    def acquire(self) -> Workspace:
        """Pop a free workspace, allocating one only at a new concurrency peak."""
        with self._lock:
            self.checkouts += 1
            if self._free:
                return self._free.pop()
            self.created += 1
        return Workspace(self.specs)

    def release(self, workspace: Workspace) -> None:
        with self._lock:
            self._free.append(workspace)

    @property
    def workspace_nbytes(self) -> int:
        """Bytes one workspace occupies (each checkout costs this much)."""
        return sum(spec.nbytes for spec in self.specs)

    @contextmanager
    def checkout(self) -> Iterator[Workspace]:
        ws = self.acquire()
        try:
            yield ws
        finally:
            self.release(ws)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"WorkspacePool(created={self.created}, free={len(self._free)}, "
                f"checkouts={self.checkouts})"
            )
