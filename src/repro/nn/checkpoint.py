"""Checkpoint I/O.

State dicts are saved as plain ``.npz`` archives (no pickle) so checkpoints
are portable and safe to load.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.nn.module import Module


def save_state(path: str, state: Dict[str, np.ndarray]) -> None:
    """Write a state dict to ``path`` as a compressed npz archive."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)


def load_state(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`."""
    with np.load(path, allow_pickle=False) as archive:
        return {key: archive[key].copy() for key in archive.files}


def save_model(path: str, model: Module) -> None:
    save_state(path, model.state_dict())


def load_model(path: str, model: Module, strict: bool = True) -> Module:
    model.load_state_dict(load_state(path), strict=strict)
    return model
