"""Post-training weight quantization.

Edge deployments ship compressed weights (the paper's ref [2], NetAdapt,
motivates static compression as the complementary lever to dynamic width).
This module provides symmetric int8 per-tensor / per-channel weight
quantization with on-load dequantisation, so a checkpoint can be shipped at
~4x smaller size and re-materialised into any :class:`repro.nn.Module` —
including the slimmable store, where the quantisation error is what the
quantization bench measures per sub-network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

INT8_MAX = 127


@dataclass(frozen=True)
class QuantizedTensor:
    """Symmetric int8 quantisation of one weight array.

    ``scale`` has shape ``()`` for per-tensor mode or ``(channels, 1...)``
    broadcastable over the array for per-channel mode.
    """

    values: np.ndarray  # int8
    scale: np.ndarray   # float64, broadcastable over values

    def __post_init__(self) -> None:
        if self.values.dtype != np.int8:
            raise TypeError("quantized values must be int8")
        if np.any(self.scale < 0):
            raise ValueError("scales must be non-negative")

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float64) * self.scale

    @property
    def nbytes(self) -> int:
        return self.values.nbytes + self.scale.nbytes


def quantize_tensor(array: np.ndarray, per_channel: bool = False) -> QuantizedTensor:
    """Symmetric int8 quantisation.

    Args:
        array: float weights.
        per_channel: scale per output channel (axis 0) instead of per tensor.
            Per-channel is meaningfully better for slimmable weights because
            channel magnitude varies across the width families.
    """
    array = np.asarray(array, dtype=np.float64)
    if per_channel and array.ndim >= 2:
        reduce_axes = tuple(range(1, array.ndim))
        max_abs = np.abs(array).max(axis=reduce_axes, keepdims=True)
    else:
        max_abs = np.abs(array).max(keepdims=True) if array.ndim else np.abs(array)
    scale = np.where(max_abs > 0, max_abs / INT8_MAX, 1.0)
    values = np.clip(np.round(array / scale), -INT8_MAX, INT8_MAX).astype(np.int8)
    return QuantizedTensor(values=values, scale=scale)


def quantization_error(array: np.ndarray, per_channel: bool = False) -> float:
    """RMS error introduced by quantise->dequantise."""
    q = quantize_tensor(array, per_channel)
    return float(np.sqrt(np.mean((q.dequantize() - array) ** 2)))


def quantize_state_dict(
    state: Dict[str, np.ndarray], per_channel: bool = True
) -> Dict[str, QuantizedTensor]:
    """Quantise every array of a state dict."""
    return {name: quantize_tensor(arr, per_channel) for name, arr in state.items()}


def dequantize_state_dict(
    quantized: Dict[str, QuantizedTensor]
) -> Dict[str, np.ndarray]:
    return {name: q.dequantize() for name, q in quantized.items()}


def dequantize_into(module, quantized: Dict[str, QuantizedTensor]) -> None:
    """Materialise a quantised checkpoint into a module's shared weight store.

    Serving cold-start path: ship the int8 archive, dequantise once into the
    module, then let any number of inference sessions alias the result —
    the sessions themselves never copy weights.
    """
    module.load_state_dict(dequantize_state_dict(quantized))


def state_dict_bytes(state: Dict[str, np.ndarray]) -> int:
    return int(sum(a.nbytes for a in state.values()))


def quantized_bytes(quantized: Dict[str, QuantizedTensor]) -> int:
    return int(sum(q.nbytes for q in quantized.values()))


def compression_ratio(state: Dict[str, np.ndarray], per_channel: bool = True) -> float:
    """float64-store-to-int8-wire compression factor."""
    quantized = quantize_state_dict(state, per_channel)
    return state_dict_bytes(state) / quantized_bytes(quantized)


def save_quantized(path: str, quantized: Dict[str, QuantizedTensor]) -> None:
    """Persist a quantised state dict as an npz archive (no pickle)."""
    import os

    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    flat: Dict[str, np.ndarray] = {}
    for name, q in quantized.items():
        flat[f"{name}::values"] = q.values
        flat[f"{name}::scale"] = q.scale
    np.savez_compressed(path, **flat)


def load_quantized(path: str) -> Dict[str, QuantizedTensor]:
    with np.load(path, allow_pickle=False) as archive:
        names = sorted({key.rsplit("::", 1)[0] for key in archive.files})
        return {
            name: QuantizedTensor(
                values=archive[f"{name}::values"].copy(),
                scale=archive[f"{name}::scale"].copy(),
            )
            for name in names
        }
