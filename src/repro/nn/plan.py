"""Compiled inference plans: the allocation-free serving hot path.

Eager slimmable inference re-derives everything per request: each
``SlicedConv2d`` call resolves its channel slices, copies the active weight
sub-block into a contiguous compute-dtype array, allocates fresh im2col /
GEMM / activation temporaries, and pads the input — millions of times for
the same ``(width, batch-shape, dtype)``.  An :class:`InferencePlan` does
all of that exactly once:

* :meth:`InferencePlan.compile` walks the network for one sub-network spec
  and precomputes every layer's geometry (output spatial sizes, im2col
  column shapes, classifier feature slice) plus the arena
  :class:`~repro.nn.workspace.BufferSpec` set the pass needs;
* a :class:`PackedWeightCache` holds contiguous compute-dtype copies of
  each layer's active weight sub-block, keyed by ``(layer, slices, dtype)``
  and invalidated by the :class:`~repro.nn.parameter.Parameter` version
  counter (bumped by optimizer steps / ``load_state_dict``), so weight
  slicing and casting vanish from the steady-state hot path;
* :meth:`InferencePlan.run` executes the pass through fused in-place
  kernels into a workspace checked out from the plan's
  :class:`~repro.nn.workspace.WorkspacePool` — zero steady-state
  allocations beyond the returned logits.

Convolution lowering is **pluggable** (``conv_backend``):

* ``"im2col"`` (default): strided window gather into a column matrix, one
  GEMM per conv.  **Bitwise identical** to the eager path at every width
  and under both dtype policies — same reduction orders, same layouts.
* ``"im2col-blocked"``: the same gather tiled over output rows so each
  tile's source band stays cache-resident.  Still **bitwise identical**
  (a copy in a different visit order).
* ``"shifted-gemm"``: no column matrix at all — each conv is a sum of
  kernel-column offset GEMMs over a rolling row panel (whole-row memcpys,
  no per-window gather), accumulated in place into a wide output arena
  whose valid pixels are a strided view.  **Relaxed equality**: the GEMM
  reduction is re-associated across kernel columns, so outputs are
  allclose, not bitwise-equal, to the eager path (``plan.exact`` is
  False).  Stride-1 convolutions only, and the compute extent is fixed at
  ``batch_rows`` (smaller batches pay the full-extent GEMMs — pair it
  with a :class:`PlanLadder` so batches land on a matching rung).

On top sits the **batch-rows ladder**: :func:`compile_plan_ladder` builds
a :class:`PlanLadder` of row-ceiling rungs (e.g. 1/4/16) per width, all
sharing one :class:`PackedWeightCache`; each request batch runs on the
smallest rung that fits, so arena memory and (for shifted-GEMM) compute
extent track the traffic's actual batch sizes instead of the worst case.

Plans are immutable after compile and safe for concurrent use: all
per-request state lives in the checked-out workspace, and the packed
cache is lock-protected (many plans may share one cache — the serving
frontend compiles one plan/ladder per width over a single shared cache).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn import functional as F
from repro.nn.workspace import BufferSpec, Workspace, WorkspacePool
from repro.slimmable.sliced_conv import SlicedConv2d
from repro.slimmable.sliced_linear import SlicedLinear
from repro.slimmable.spec import ChannelSlice, SubNetSpec
from repro.utils.dtypes import compute_dtype

#: Default batch-row ceilings for :func:`compile_plan_ladder` /
#: :func:`compile_width_ladders` (the top rung is always the caller's
#: ``batch_rows``; these seed the smaller rungs).
DEFAULT_ROWS_LADDER = (1, 4, 16)


class PackedWeightCache:
    """Contiguous compute-dtype copies of active weight sub-blocks.

    Entries are keyed by ``(layer, slices, layout, dtype)`` and carry the
    weight / bias version counters they were packed at; a lookup that
    observes a newer parameter version re-packs in place.  The cache is
    shared by all plans over one weight store (slices at different widths
    — and different backend layouts — are distinct entries), so concurrent
    serving threads only ever *read* packed arrays.

    The steady-state lookup is lock-free: a dict get plus two int compares
    (each atomic under the GIL; entries are immutable tuples swapped in by
    a single assignment), so K serving threads never contend on the cache.
    Only a repack takes the lock, and a harmless double-pack under a
    version race just writes the same fresh block twice.

    An in-flight forward that started before an optimizer step finishes on
    the packed arrays it already fetched — the same snapshot semantics the
    eager path has for sliced sub-blocks, whose contiguous cast copies at
    call entry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[tuple, Tuple[int, int, np.ndarray, np.ndarray]] = {}
        self.packs = 0  # total (re-)pack events, for staleness tests

    def _lookup(self, key: tuple, layer, pack) -> Tuple[np.ndarray, np.ndarray]:
        entry = self._entries.get(key)
        wv, bv = layer.weight.version, layer.bias.version
        if entry is not None and entry[0] == wv and entry[1] == bv:
            return entry[2], entry[3]  # lock-free hot path
        with self._lock:
            entry = self._entries.get(key)
            wv, bv = layer.weight.version, layer.bias.version
            if entry is None or entry[0] != wv or entry[1] != bv:
                arrays = pack()
                entry = (wv, bv) + arrays
                self._entries[key] = entry
                self.packs += 1
            return entry[2], entry[3]

    def conv_block(
        self,
        layer: SlicedConv2d,
        in_slice: ChannelSlice,
        out_slice: ChannelSlice,
        dtype: np.dtype,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(w_mat, bias)`` for a conv sub-block, GEMM-ready.

        ``w_mat`` is the active ``(C_out, C_in*kh*kw)`` block, contiguous
        in ``dtype`` — exactly what the eager path builds per call via
        ``ascontiguousarray(active_weight).reshape``.
        """

        def pack() -> Tuple[np.ndarray, np.ndarray]:
            w = np.ascontiguousarray(
                layer.active_weight(in_slice, out_slice), dtype=dtype
            )
            w_mat = w.reshape(out_slice.width, -1)
            bias = np.ascontiguousarray(layer.active_bias(out_slice), dtype=dtype)
            return w_mat, bias

        key = (layer, in_slice, out_slice, "mat", dtype.str)
        return self._lookup(key, layer, pack)

    def conv_panels(
        self,
        layer: SlicedConv2d,
        in_slice: ChannelSlice,
        out_slice: ChannelSlice,
        dtype: np.dtype,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(w_panels, bias)`` for the shifted-GEMM backend.

        ``w_panels`` has shape ``(kw, C_out, C_in*kh)``: ``w_panels[j]`` is
        the contiguous GEMM operand for kernel column ``j`` (see
        :func:`~repro.nn.functional.shifted_gemm_conv`).
        """

        def pack() -> Tuple[np.ndarray, np.ndarray]:
            w = np.ascontiguousarray(
                layer.active_weight(in_slice, out_slice), dtype=dtype
            )
            kw = w.shape[-1]
            panels = np.ascontiguousarray(
                w.transpose(3, 0, 1, 2).reshape(kw, out_slice.width, -1)
            )
            bias = np.ascontiguousarray(layer.active_bias(out_slice), dtype=dtype)
            return panels, bias

        key = (layer, in_slice, out_slice, "panels", dtype.str)
        return self._lookup(key, layer, pack)

    def linear_block(
        self, layer: SlicedLinear, feature_slice: ChannelSlice, dtype: np.dtype
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(weight, bias)`` for the classifier's active feature columns."""

        def pack() -> Tuple[np.ndarray, np.ndarray]:
            w = np.ascontiguousarray(layer.active_weight(feature_slice), dtype=dtype)
            bias = np.ascontiguousarray(layer.bias.data, dtype=dtype)
            return w, bias

        key = (layer, feature_slice, "linear", dtype.str)
        return self._lookup(key, layer, pack)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


@dataclass(frozen=True)
class _ConvStep:
    """Precompiled geometry of one conv (+ReLU, +optional pool) block."""

    layer: SlicedConv2d
    in_slice: ChannelSlice
    out_slice: ChannelSlice
    kernel: Tuple[int, int]
    stride: int
    padding: int
    in_hw: Tuple[int, int]    # unpadded input spatial size
    out_hw: Tuple[int, int]   # conv output spatial size
    pool: Optional[Tuple[int, int, Tuple[int, int]]]  # (kernel, stride, pooled_hw)
    src: str                  # padded input buffer
    cols: str                 # im2col columns buffer
    gemm: str                 # GEMM/epilogue buffer, (rows, C_out) NHWC-flat
    act: Optional[str]        # unpadded NCHW buffer (only where needed)
    dst: Optional[str]        # next step's padded input (None on the last conv)
    dst_padding: int          # that next step's padding
    row_block: Optional[int] = None  # im2col-blocked: output-row tile size


@dataclass(frozen=True)
class _ShiftedStep:
    """One conv block lowered to kernel-column offset GEMMs (stride 1).

    Activations flow channel-major: every ``src``/``dst`` arena is a
    flattened ``(C, rows*Hp*Wp + tail)`` padded buffer whose per-image
    blocks are contiguous, so each offset operand is a whole-row slice.
    """

    layer: SlicedConv2d
    in_slice: ChannelSlice
    out_slice: ChannelSlice
    kernel: int
    padding: int
    in_hw: Tuple[int, int]
    out_hw: Tuple[int, int]
    padded_hw: Tuple[int, int]
    pool: Optional[Tuple[int, int, Tuple[int, int]]]
    src: str                  # (C_in, rows*Hp*Wp + tail) flattened arena
    panel: str                # (C_in*kh, rows*Hp*Wp) rolling row panel
    wide: str                 # (C_out, rows*Hp*Wp) wide GEMM accumulator
    scratch: str              # (C_out, rows*Hp*Wp) accumulation scratch
    act: Optional[str]        # (C_out, rows, oh, ow) channel-major activation
    dst: Optional[str]        # next step's flattened arena (None on last conv)
    dst_padding: int


def _interior(buf: np.ndarray, n: int, padding: int, hw: Tuple[int, int]) -> np.ndarray:
    """First-``n``-rows view of a padded buffer's writable interior."""
    if padding == 0:
        return buf[:n]
    h, w = hw
    return buf[:n, :, padding : padding + h, padding : padding + w]


def _flat_interior(
    buf: np.ndarray, rows: int, padding: int, hw: Tuple[int, int]
) -> np.ndarray:
    """Channel-major ``(C, rows, h, w)`` interior view of a flattened arena."""
    h, w = hw
    hp, wp = h + 2 * padding, w + 2 * padding
    view = buf[:, : rows * hp * wp].reshape(buf.shape[0], rows, hp, wp)
    if padding == 0:
        return view
    return view[:, :, padding : padding + h, padding : padding + w]


class InferencePlan:
    """One compiled ``(sub-network, batch-rows, dtype, backend)`` forward pass."""

    def __init__(
        self,
        net,
        spec: SubNetSpec,
        batch_rows: int,
        dtype: np.dtype,
        steps: List,
        feature_slice: ChannelSlice,
        buffers: List[BufferSpec],
        cache: PackedWeightCache,
        workspaces: int,
        conv_backend: str,
    ) -> None:
        self.net = net
        self.spec = spec
        self.width = spec.name
        self.batch_rows = batch_rows
        self.dtype = dtype
        self.cache = cache
        self.conv_backend = conv_backend
        self._steps = steps
        self._feature_slice = feature_slice
        self._in_shape = (net.in_channels, net.image_size, net.image_size)
        self.workspaces = WorkspacePool(buffers, prealloc=workspaces)

    @property
    def exact(self) -> bool:
        """True when outputs are bitwise-identical to the eager path."""
        return self.conv_backend != "shifted-gemm"

    # -- compilation ----------------------------------------------------------

    @classmethod
    def compile(
        cls,
        model,
        width: Union[str, SubNetSpec, None] = None,
        *,
        batch_rows: int,
        dtype: Optional[np.dtype] = None,
        cache: Optional[PackedWeightCache] = None,
        workspaces: int = 1,
        conv_backend: str = "im2col",
    ) -> "InferencePlan":
        """Walk ``model`` once and compile its serving pass.

        ``model`` is anything :class:`~repro.engine.session.InferenceSession`
        accepts: a ``SlimmableConvNet``, a ``SubNetworkView`` (its spec wins
        when ``width`` is omitted), or a model family plus a subnet name.
        ``dtype`` defaults to the active policy's inference dtype;
        ``batch_rows`` is the widest batch the plan's arenas can hold —
        smaller requests run in leading-row views of the same buffers
        (``shifted-gemm`` computes the full extent regardless — see the
        module docs).  ``conv_backend`` picks the convolution lowering.
        """
        F.check_conv_backend(conv_backend)
        if batch_rows <= 0:
            raise ValueError("batch_rows must be positive")
        net, spec = cls._resolve(model, width)
        dtype = np.dtype(dtype) if dtype is not None else compute_dtype(training=False)
        if cache is None:  # note: an empty cache is falsy (len 0) — test identity
            cache = PackedWeightCache()

        walk = cls._walk(net, spec)
        if conv_backend == "shifted-gemm":
            steps, buffers = cls._compile_shifted(net, walk, batch_rows, dtype)
        else:
            steps, buffers = cls._compile_im2col(
                net, walk, batch_rows, dtype, blocked=conv_backend == "im2col-blocked"
            )

        classifier = net.classifier
        if not isinstance(classifier, SlicedLinear):
            raise TypeError(f"cannot compile classifier {type(classifier).__name__}")
        feature_slice = classifier.resolve_feature_slice(
            net.feature_slice_for(spec.last_slice)
        )
        buffers.append(BufferSpec("logits", (batch_rows, classifier.out_features), dtype.name))
        # Warm the packed cache at compile so the first request is already
        # on the steady-state path.
        for step in steps:
            if conv_backend == "shifted-gemm":
                cache.conv_panels(step.layer, step.in_slice, step.out_slice, dtype)
            else:
                cache.conv_block(step.layer, step.in_slice, step.out_slice, dtype)
        cache.linear_block(classifier, feature_slice, dtype)
        return cls(
            net, spec, batch_rows, dtype, steps, feature_slice, buffers, cache,
            workspaces, conv_backend,
        )

    @staticmethod
    def _walk(net, spec: SubNetSpec) -> List[dict]:
        """Shared geometry walk: one dict per conv block, in order."""
        size = net.image_size
        num = len(net.convs)
        if len(spec.conv_slices) != num:
            raise ValueError(
                f"spec {spec.name!r} has {len(spec.conv_slices)} conv slices, "
                f"net has {num}"
            )
        prev: Optional[ChannelSlice] = None
        walk: List[dict] = []
        for i, (conv, out_sl) in enumerate(zip(net.convs, spec.conv_slices)):
            if not isinstance(conv, SlicedConv2d):
                raise TypeError(f"cannot compile layer {type(conv).__name__}")
            in_sl, out_sl = conv.resolve_slices(prev, out_sl)
            k = conv.kernel_size
            out_h = F.conv_out_size(size, k, conv.stride, conv.padding)
            pool_layer = net.pools.get(i)
            pool = None
            after = (out_h, out_h)
            if pool_layer is not None:
                ph = F.conv_out_size(out_h, pool_layer.kernel_size, pool_layer.stride, 0)
                pool = (pool_layer.kernel_size, pool_layer.stride, (ph, ph))
                after = (ph, ph)
            walk.append(
                dict(
                    index=i,
                    conv=conv,
                    in_slice=in_sl,
                    out_slice=out_sl,
                    kernel=k,
                    stride=conv.stride,
                    padding=conv.padding,
                    in_hw=(size, size),
                    out_hw=(out_h, out_h),
                    pool=pool,
                    last=i == num - 1,
                    next_padding=net.convs[i + 1].padding if i < num - 1 else 0,
                )
            )
            size = after[0]
            prev = out_sl
        return walk

    @classmethod
    def _compile_im2col(
        cls, net, walk: List[dict], batch_rows: int, dtype: np.dtype, *, blocked: bool
    ) -> Tuple[List[_ConvStep], List[BufferSpec]]:
        steps: List[_ConvStep] = []
        buffers: List[BufferSpec] = []
        dt = dtype.name
        for info in walk:
            i, conv = info["index"], info["conv"]
            k, pad = info["kernel"], info["padding"]
            size = info["in_hw"][0]
            out_h, out_w = info["out_hw"]
            in_c = info["in_slice"].width
            out_c = info["out_slice"].width
            pool, last = info["pool"], info["last"]
            src = f"in{i}"
            buffers.append(
                BufferSpec(
                    src,
                    (batch_rows, in_c, size + 2 * pad, size + 2 * pad),
                    dt,
                    zeroed=pad > 0,
                )
            )
            rows = batch_rows * out_h * out_w
            buffers.append(BufferSpec(f"cols{i}", (rows, in_c * k * k), dt))
            buffers.append(BufferSpec(f"gemm{i}", (rows, out_c), dt))
            # The NHWC-flat GEMM result must land in NCHW somewhere: in a
            # dedicated act buffer when a pool reads it (or when it is the
            # final feature map), otherwise straight into the next conv's
            # padded input interior.
            act = f"act{i}" if (pool is not None or last) else None
            if act is not None:
                buffers.append(BufferSpec(act, (batch_rows, out_c, out_h, out_w), dt))
            if last and pool is not None:
                # A pooled final conv writes its features into a dedicated
                # unpadded buffer (dst would otherwise be the next conv's
                # padded input).
                after = pool[2]
                dst, dst_pad = f"pool{i}", 0
                buffers.append(
                    BufferSpec(dst, (batch_rows, out_c, after[0], after[1]), dt)
                )
            elif last:
                dst, dst_pad = None, 0
            else:
                dst, dst_pad = f"in{i + 1}", info["next_padding"]
            row_block = None
            if blocked:
                row_block = F.im2col_row_block(
                    in_c, size + 2 * pad, k, info["stride"], dtype.itemsize
                )
            steps.append(
                _ConvStep(
                    layer=conv,
                    in_slice=info["in_slice"],
                    out_slice=info["out_slice"],
                    kernel=(k, k),
                    stride=info["stride"],
                    padding=pad,
                    in_hw=info["in_hw"],
                    out_hw=(out_h, out_w),
                    pool=pool,
                    src=src,
                    cols=f"cols{i}",
                    gemm=f"gemm{i}",
                    act=act,
                    dst=dst,
                    dst_padding=dst_pad,
                    row_block=row_block,
                )
            )
        return steps, buffers

    @classmethod
    def _compile_shifted(
        cls, net, walk: List[dict], batch_rows: int, dtype: np.dtype
    ) -> Tuple[List[_ShiftedStep], List[BufferSpec]]:
        steps: List[_ShiftedStep] = []
        buffers: List[BufferSpec] = []
        dt = dtype.name
        for info in walk:
            if info["stride"] != 1:
                raise ValueError(
                    "conv_backend='shifted-gemm' supports stride-1 convolutions "
                    f"only (conv{info['index']} has stride {info['stride']}); "
                    "use an im2col backend"
                )
            i = info["index"]
            k, pad = info["kernel"], info["padding"]
            size = info["in_hw"][0]
            hp = wp = size + 2 * pad
            block = hp * wp
            length = batch_rows * block
            tail = F.shifted_tail(k, wp)
            in_c = info["in_slice"].width
            out_c = info["out_slice"].width
            out_h, out_w = info["out_hw"]
            pool, last = info["pool"], info["last"]
            src = f"in{i}"
            # Padding borders and the inter-image tail are never written, so
            # they stay zero forever.  Interior rows beyond a smaller batch
            # are NOT re-zeroed — they hold a previous request's activations,
            # whose outputs are computed at full extent and discarded (the
            # valid result is always sliced to the live row count).
            buffers.append(BufferSpec(src, (in_c, length + tail), dt, zeroed=True))
            buffers.append(BufferSpec(f"panel{i}", (in_c * k, length), dt))
            buffers.append(BufferSpec(f"wide{i}", (out_c, length), dt))
            buffers.append(BufferSpec(f"scratch{i}", (out_c, length), dt))
            act = f"act{i}" if (pool is not None or last) else None
            if act is not None:
                buffers.append(BufferSpec(act, (out_c, batch_rows, out_h, out_w), dt))
            if last and pool is not None:
                after = pool[2]
                dst, dst_pad = f"pool{i}", 0
                buffers.append(
                    BufferSpec(dst, (out_c, batch_rows * after[0] * after[1]), dt)
                )
            elif last:
                dst, dst_pad = None, 0
            else:
                dst, dst_pad = f"in{i + 1}", info["next_padding"]
            steps.append(
                _ShiftedStep(
                    layer=info["conv"],
                    in_slice=info["in_slice"],
                    out_slice=info["out_slice"],
                    kernel=k,
                    padding=pad,
                    in_hw=info["in_hw"],
                    out_hw=(out_h, out_w),
                    padded_hw=(hp, wp),
                    pool=pool,
                    src=src,
                    panel=f"panel{i}",
                    wide=f"wide{i}",
                    scratch=f"scratch{i}",
                    act=act,
                    dst=dst,
                    dst_padding=dst_pad,
                )
            )
        # The classifier reads image-major features: one transposed copy of
        # the final channel-major activation.
        last_info = walk[-1]
        feat_c = last_info["out_slice"].width
        feat_hw = last_info["pool"][2] if last_info["pool"] else last_info["out_hw"]
        buffers.append(
            BufferSpec("feat", (batch_rows, feat_c * feat_hw[0] * feat_hw[1]), dt)
        )
        return steps, buffers

    @staticmethod
    def _resolve(model, width: Union[str, SubNetSpec, None]):
        """Normalise the accepted model forms to ``(net, spec)``."""
        spec = width if isinstance(width, SubNetSpec) else None
        net = getattr(model, "net", model)
        if spec is None and width is None and hasattr(model, "spec") and isinstance(
            getattr(model, "spec", None), SubNetSpec
        ):
            spec = model.spec  # a SubNetworkView carries its own spec
        if spec is None:
            width_spec = getattr(net, "width_spec", None)
            if width_spec is None:
                raise TypeError(f"cannot compile a plan from {type(model).__name__}")
            spec = width_spec.find(width) if isinstance(width, str) else width_spec.full()
        if not hasattr(net, "convs") or not hasattr(net, "classifier"):
            raise TypeError(f"cannot compile a plan from {type(net).__name__}")
        return net, spec

    # -- admission ------------------------------------------------------------

    def accepts(self, x: np.ndarray) -> bool:
        """True when ``x`` can run on this plan under the active dtype policy."""
        return (
            x.ndim == 4
            and tuple(x.shape[1:]) == self._in_shape
            and 0 < x.shape[0] <= self.batch_rows
            and compute_dtype(training=False) == self.dtype
        )

    def accepts_parts(self, parts: Sequence[np.ndarray]) -> bool:
        return (
            len(parts) > 0
            and all(p.ndim == 4 and tuple(p.shape[1:]) == self._in_shape for p in parts)
            and 0 < sum(p.shape[0] for p in parts) <= self.batch_rows
            and compute_dtype(training=False) == self.dtype
        )

    # -- execution ------------------------------------------------------------

    def run(self, x: np.ndarray) -> np.ndarray:
        """One request through the compiled pass (thread-safe)."""
        return self.run_parts((x,))

    def run_parts(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        """Run a micro-batch, scattering each part straight into the input arena.

        This is the batching fast path: the queue hands over the raw
        request arrays and the rows land in the plan's (padded) input
        buffer directly — no ``np.concatenate`` temporary.
        """
        if not parts:
            raise ValueError("run_parts needs at least one array")
        n = 0
        for p in parts:
            if p.ndim != 4 or tuple(p.shape[1:]) != self._in_shape:
                raise ValueError(
                    f"plan expects (*, {self._in_shape[0]}, {self._in_shape[1]}, "
                    f"{self._in_shape[2]}), got {p.shape}"
                )
            n += p.shape[0]
        if n > self.batch_rows:
            raise ValueError(f"{n} rows exceed the plan's {self.batch_rows}-row arena")
        with self.workspaces.checkout() as ws:
            if self.conv_backend == "shifted-gemm":
                return self._execute_shifted(ws, parts, n)
            return self._execute(ws, parts, n)

    def _execute(self, ws: Workspace, parts: Sequence[np.ndarray], n: int) -> np.ndarray:
        first = self._steps[0]
        src = ws[first.src]
        offset = 0
        for part in parts:
            k = part.shape[0]
            # Assignment casts to the compute dtype; padded borders were
            # zeroed at allocation and are never written, replacing the
            # per-call np.pad round-trip.
            np.copyto(
                _interior(src[offset : offset + k], k, first.padding, first.in_hw), part
            )
            offset += k

        x = src  # padded NCHW input of the current step
        for step in self._steps:
            out_h, out_w = step.out_hw
            rows = n * out_h * out_w
            cols = ws[step.cols][:rows]
            F.im2col_into(x[:n], step.kernel, step.stride, cols, step.row_block)
            w_mat, bias = self.cache.conv_block(
                step.layer, step.in_slice, step.out_slice, self.dtype
            )
            gemm = ws[step.gemm][:rows]
            F.gemm_bias_relu(cols, w_mat, bias, gemm)
            nchw = gemm.reshape(n, out_h, out_w, step.out_slice.width).transpose(0, 3, 1, 2)
            if step.act is not None:
                act = ws[step.act][:n]
                np.copyto(act, nchw)
                if step.pool is not None:
                    pk, ps, pooled_hw = step.pool
                    dst = _interior(ws[step.dst], n, step.dst_padding, pooled_hw)
                    F.maxpool2d_into(act, pk, ps, dst)
                    x = ws[step.dst]
                else:
                    x = ws[step.act]  # final feature map
            else:
                # No pool in between: transpose straight into the next
                # conv's padded interior.
                np.copyto(_interior(ws[step.dst], n, step.dst_padding, step.out_hw), nchw)
                x = ws[step.dst]

        features = x[:n].reshape(n, -1)
        return self._classify(ws, features, n)

    def _execute_shifted(
        self, ws: Workspace, parts: Sequence[np.ndarray], n: int
    ) -> np.ndarray:
        rows = self.batch_rows  # fixed compute extent (see module docs)
        first = self._steps[0]
        src = ws[first.src]
        interior = _flat_interior(src, rows, first.padding, first.in_hw)
        offset = 0
        for part in parts:
            k = part.shape[0]
            # Channel-major scatter; rows beyond n keep whatever a previous
            # request left — their outputs are computed and discarded.
            np.copyto(interior[:, offset : offset + k], part.transpose(1, 0, 2, 3))
            offset += k

        x = src
        final = None
        for step in self._steps:
            hp, wp = step.padded_hw
            out_h, out_w = step.out_hw
            w_panels, bias = self.cache.conv_panels(
                step.layer, step.in_slice, step.out_slice, self.dtype
            )
            wide = F.shifted_gemm_conv(
                x, w_panels, ws[step.panel], ws[step.wide], ws[step.scratch],
                step.kernel, wp,
            )
            valid = wide.reshape(step.out_slice.width, rows, hp, wp)[
                :, :, :out_h, :out_w
            ]
            if step.pool is not None:
                act = ws[step.act]
                F.bias_act_into(valid, bias, act)
                pk, ps, pooled_hw = step.pool
                dst = _flat_interior(ws[step.dst], rows, step.dst_padding, pooled_hw)
                F.maxpool2d_into(act, pk, ps, dst)
                x = ws[step.dst]
                final = dst if step.dst.startswith("pool") else None
            elif step.act is not None:
                act = ws[step.act]
                F.bias_act_into(valid, bias, act)
                x = act
                final = act
            else:
                dst = _flat_interior(ws[step.dst], rows, step.dst_padding, step.out_hw)
                F.bias_act_into(valid, bias, dst)
                x = ws[step.dst]

        # Channel-major (C, n, h, w) -> image-major (n, C*h*w) features.
        feat = ws["feat"][:n]
        c = final.shape[0]
        np.copyto(
            feat.reshape(n, c, final.shape[2], final.shape[3]),
            final[:, :n].transpose(1, 0, 2, 3),
        )
        return self._classify(ws, feat, n)

    def _classify(self, ws: Workspace, features: np.ndarray, n: int) -> np.ndarray:
        w, b = self.cache.linear_block(self.net.classifier, self._feature_slice, self.dtype)
        logits = ws["logits"][:n]
        F.gemm_bias(features, w, b, logits)
        # The workspace buffer goes back into the pool; the caller gets an
        # owned copy (the only steady-state allocation on the hot path).
        return logits.copy()

    # -- cost hooks -----------------------------------------------------------

    def flops_per_image(self) -> int:
        """FLOPs of one image through this plan (from the compiled geometry)."""
        total = 0
        for step in self._steps:
            h, w = step.in_hw
            total += step.layer.flops_per_image(h, w, step.in_slice, step.out_slice)
        total += self.net.classifier.flops_per_image(self._feature_slice)
        return total

    def __repr__(self) -> str:
        return (
            f"InferencePlan({self.width}, rows={self.batch_rows}, "
            f"dtype={self.dtype.name}, convs={len(self._steps)}, "
            f"backend={self.conv_backend})"
        )


class PlanLadder:
    """A ladder of row-ceiling rungs for one ``(width, dtype, backend)``.

    Each rung is an :class:`InferencePlan` compiled at one ``batch_rows``
    ceiling; all rungs share one weight store and one
    :class:`PackedWeightCache`, so the ladder costs extra *arena* memory
    only — and the small rungs' arenas are tiny.  :meth:`run` /
    :meth:`run_parts` dispatch each batch to the **smallest rung that
    fits**, so mostly-small traffic touches mostly-small arenas (and, for
    the shifted-GEMM backend, pays a matching compute extent instead of
    the top rung's).  Ducks as a plan: the serving stack
    (:class:`~repro.engine.session.InferenceSession`, replicas, the
    frontend) treats ladders and single plans interchangeably.

    Rungs may use **different conv backends** (e.g. im2col on the 1-row
    rung, shifted-gemm on the 16-row rung — the best column of each
    ``BENCH_plan.json`` grid row); width, dtype, and the weight store
    must still match.  ``conv_backend`` reports the head (smallest)
    rung's backend; ``exact`` is True only when *every* rung keeps the
    bitwise contract.
    """

    def __init__(self, plans: Sequence[InferencePlan]) -> None:
        if not plans:
            raise ValueError("PlanLadder needs at least one rung")
        rungs = sorted(plans, key=lambda p: p.batch_rows)
        head = rungs[0]
        for plan in rungs[1:]:
            if (
                plan.width != head.width
                or plan.dtype != head.dtype
                or plan.net is not head.net
            ):
                raise ValueError(
                    "ladder rungs must share width, dtype and weight store"
                )
        if len({p.batch_rows for p in rungs}) != len(rungs):
            raise ValueError("ladder rungs must have distinct batch_rows")
        self.rungs: Tuple[InferencePlan, ...] = tuple(rungs)
        self.net = head.net
        self.width = head.width
        self.dtype = head.dtype
        self.conv_backend = head.conv_backend
        self.cache = head.cache

    @property
    def exact(self) -> bool:
        return all(p.exact for p in self.rungs)

    @property
    def batch_rows(self) -> int:
        """The top rung's ceiling — the largest batch the ladder serves."""
        return self.rungs[-1].batch_rows

    def rung_for(self, rows: int) -> Optional[InferencePlan]:
        """The smallest rung whose arena holds ``rows`` (None when none does)."""
        for plan in self.rungs:
            if rows <= plan.batch_rows:
                return plan
        return None

    def accepts(self, x: np.ndarray) -> bool:
        return self.rungs[-1].accepts(x)

    def accepts_parts(self, parts: Sequence[np.ndarray]) -> bool:
        return self.rungs[-1].accepts_parts(parts)

    def run(self, x: np.ndarray) -> np.ndarray:
        plan = self.rung_for(x.shape[0]) if x.ndim >= 1 else None
        if plan is None:
            raise ValueError(
                f"{x.shape[0]} rows exceed the ladder's top rung ({self.batch_rows})"
            )
        return plan.run(x)

    def run_parts(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        rows = sum(p.shape[0] for p in parts)
        plan = self.rung_for(rows)
        if plan is None:
            raise ValueError(
                f"{rows} rows exceed the ladder's top rung ({self.batch_rows})"
            )
        return plan.run_parts(parts)

    def flops_per_image(self) -> int:
        return self.rungs[-1].flops_per_image()

    def arena_nbytes(self) -> Dict[int, int]:
        """Per-rung workspace footprint in bytes (one workspace each)."""
        return {
            p.batch_rows: p.workspaces.workspace_nbytes for p in self.rungs
        }

    def __repr__(self) -> str:
        rows = "/".join(str(p.batch_rows) for p in self.rungs)
        backends = {p.conv_backend for p in self.rungs}
        if len(backends) == 1:
            backend = self.conv_backend
        else:
            backend = "/".join(p.conv_backend for p in self.rungs)
        return (
            f"PlanLadder({self.width}, rows={rows}, dtype={self.dtype.name}, "
            f"backend={backend})"
        )


def normalize_rows_ladder(
    rows_ladder: Sequence[int], batch_rows: int
) -> Tuple[int, ...]:
    """Sorted unique rungs capped at ``batch_rows``, top rung included.

    Rungs above the ceiling are dropped (not clamped) and the ceiling
    itself is always a rung, so every admissible batch has a home and no
    arena is larger than the caller's budget.
    """
    if batch_rows <= 0:
        raise ValueError("batch_rows must be positive")
    rungs = sorted({int(r) for r in rows_ladder if 0 < int(r) < batch_rows})
    return tuple(rungs) + (batch_rows,)


def compile_plan_ladder(
    model,
    width: Union[str, SubNetSpec, None] = None,
    *,
    batch_rows: int,
    rows_ladder: Sequence[int] = DEFAULT_ROWS_LADDER,
    dtype: Optional[np.dtype] = None,
    cache: Optional[PackedWeightCache] = None,
    workspaces: int = 1,
    conv_backend: str = "im2col",
    conv_backend_per_rung: Optional[
        Union[Mapping[int, str], Sequence[Tuple[int, str]]]
    ] = None,
) -> PlanLadder:
    """Compile one :class:`PlanLadder` (see there) for a single width.

    ``conv_backend_per_rung`` maps a rung's row ceiling to its conv
    lowering (``{1: "im2col", 16: "shifted-gemm"}`` or the equivalent
    pair sequence); unmapped rungs fall back to ``conv_backend``.  Keys
    must name rungs of the *normalized* ladder — a typo'd rung would
    otherwise silently compile the default backend.
    """
    if cache is None:
        cache = PackedWeightCache()
    rungs = normalize_rows_ladder(rows_ladder, batch_rows)
    per_rung = dict(conv_backend_per_rung or {})
    unknown = sorted(set(per_rung) - set(rungs))
    if unknown:
        raise ValueError(
            f"conv_backend_per_rung keys {unknown} are not ladder rungs {rungs}"
        )
    plans = [
        InferencePlan.compile(
            model,
            width,
            batch_rows=rows,
            dtype=dtype,
            cache=cache,
            workspaces=workspaces,
            conv_backend=per_rung.get(rows, conv_backend),
        )
        for rows in rungs
    ]
    return PlanLadder(plans)


def compile_width_plans(
    model,
    widths: Sequence[Union[str, SubNetSpec]],
    *,
    batch_rows: int,
    dtype: Optional[np.dtype] = None,
    cache: Optional[PackedWeightCache] = None,
    workspaces: int = 1,
    conv_backend: str = "im2col",
    rows_ladder: Optional[Sequence[int]] = None,
    conv_backend_per_rung: Optional[
        Union[Mapping[int, str], Sequence[Tuple[int, str]]]
    ] = None,
) -> Dict[str, Union[InferencePlan, PlanLadder]]:
    """One plan (or, with ``rows_ladder``, one ladder) per width.

    The serving frontend's bulk entry point: all plans alias one weight
    store and one :class:`PackedWeightCache`, so N widths cost N arena
    sets but zero duplicate weight packs.
    """
    if cache is None:  # an empty cache is falsy (len 0) — test identity
        cache = PackedWeightCache()
    if conv_backend_per_rung and rows_ladder is None:
        raise ValueError("conv_backend_per_rung requires rows_ladder")
    plans: Dict[str, Union[InferencePlan, PlanLadder]] = {}
    for width in widths:
        if rows_ladder is not None:
            plan: Union[InferencePlan, PlanLadder] = compile_plan_ladder(
                model,
                width,
                batch_rows=batch_rows,
                rows_ladder=rows_ladder,
                dtype=dtype,
                cache=cache,
                workspaces=workspaces,
                conv_backend=conv_backend,
                conv_backend_per_rung=conv_backend_per_rung,
            )
        else:
            plan = InferencePlan.compile(
                model,
                width,
                batch_rows=batch_rows,
                dtype=dtype,
                cache=cache,
                workspaces=workspaces,
                conv_backend=conv_backend,
            )
        plans[plan.width] = plan
    return plans
