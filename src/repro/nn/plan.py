"""Compiled inference plans: the allocation-free serving hot path.

Eager slimmable inference re-derives everything per request: each
``SlicedConv2d`` call resolves its channel slices, copies the active weight
sub-block into a contiguous compute-dtype array, allocates fresh im2col /
GEMM / activation temporaries, and pads the input — millions of times for
the same ``(width, batch-shape, dtype)``.  An :class:`InferencePlan` does
all of that exactly once:

* :meth:`InferencePlan.compile` walks the network for one sub-network spec
  and precomputes every layer's geometry (output spatial sizes, im2col
  column shapes, classifier feature slice) plus the arena
  :class:`~repro.nn.workspace.BufferSpec` set the pass needs;
* a :class:`PackedWeightCache` holds contiguous compute-dtype copies of
  each layer's active weight sub-block, keyed by ``(layer, slices, dtype)``
  and invalidated by the :class:`~repro.nn.parameter.Parameter` version
  counter (bumped by optimizer steps / ``load_state_dict``), so weight
  slicing and casting vanish from the steady-state hot path;
* :meth:`InferencePlan.run` executes the pass through fused in-place
  kernels (:func:`~repro.nn.functional.im2col_into`,
  :func:`~repro.nn.functional.gemm_bias_relu`,
  :func:`~repro.nn.functional.maxpool2d_into`,
  :func:`~repro.nn.functional.gemm_bias`) into a workspace checked out
  from the plan's :class:`~repro.nn.workspace.WorkspacePool` — zero
  steady-state allocations beyond the returned logits.

Outputs are **bitwise identical** to the eager path at every width and
under both dtype policies: the plan preserves the eager reduction orders
(same im2col column layout, same GEMM operand layouts, same elementwise
epilogues), it just stops re-materialising the operands per call.

Plans are immutable after compile and safe for concurrent use: all
per-request state lives in the checked-out workspace, and the packed
cache is lock-protected (many plans may share one cache — the serving
frontend compiles one plan per width over a single shared cache).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn import functional as F
from repro.nn.workspace import BufferSpec, Workspace, WorkspacePool
from repro.slimmable.sliced_conv import SlicedConv2d
from repro.slimmable.sliced_linear import SlicedLinear
from repro.slimmable.spec import ChannelSlice, SubNetSpec
from repro.utils.dtypes import compute_dtype


class PackedWeightCache:
    """Contiguous compute-dtype copies of active weight sub-blocks.

    Entries are keyed by ``(layer, slices, dtype)`` and carry the weight /
    bias version counters they were packed at; a lookup that observes a
    newer parameter version re-packs in place.  The cache is shared by all
    plans over one weight store (slices at different widths are distinct
    entries), so concurrent serving threads only ever *read* packed arrays.

    The steady-state lookup is lock-free: a dict get plus two int compares
    (each atomic under the GIL; entries are immutable tuples swapped in by
    a single assignment), so K serving threads never contend on the cache.
    Only a repack takes the lock, and a harmless double-pack under a
    version race just writes the same fresh block twice.

    An in-flight forward that started before an optimizer step finishes on
    the packed arrays it already fetched — the same snapshot semantics the
    eager path has for sliced sub-blocks, whose contiguous cast copies at
    call entry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[tuple, Tuple[int, int, np.ndarray, np.ndarray]] = {}
        self.packs = 0  # total (re-)pack events, for staleness tests

    def conv_block(
        self,
        layer: SlicedConv2d,
        in_slice: ChannelSlice,
        out_slice: ChannelSlice,
        dtype: np.dtype,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(w_mat, bias)`` for a conv sub-block, GEMM-ready.

        ``w_mat`` is the active ``(C_out, C_in*kh*kw)`` block, contiguous
        in ``dtype`` — exactly what the eager path builds per call via
        ``ascontiguousarray(active_weight).reshape``.
        """
        key = (layer, in_slice, out_slice, dtype.str)
        entry = self._entries.get(key)
        wv, bv = layer.weight.version, layer.bias.version
        if entry is not None and entry[0] == wv and entry[1] == bv:
            return entry[2], entry[3]  # lock-free hot path
        with self._lock:
            entry = self._entries.get(key)
            wv, bv = layer.weight.version, layer.bias.version
            if entry is None or entry[0] != wv or entry[1] != bv:
                w = np.ascontiguousarray(
                    layer.active_weight(in_slice, out_slice), dtype=dtype
                )
                w_mat = w.reshape(out_slice.width, -1)
                bias = np.ascontiguousarray(layer.active_bias(out_slice), dtype=dtype)
                entry = (wv, bv, w_mat, bias)
                self._entries[key] = entry
                self.packs += 1
            return entry[2], entry[3]

    def linear_block(
        self, layer: SlicedLinear, feature_slice: ChannelSlice, dtype: np.dtype
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(weight, bias)`` for the classifier's active feature columns."""
        key = (layer, feature_slice, dtype.str)
        entry = self._entries.get(key)
        wv, bv = layer.weight.version, layer.bias.version
        if entry is not None and entry[0] == wv and entry[1] == bv:
            return entry[2], entry[3]  # lock-free hot path
        with self._lock:
            entry = self._entries.get(key)
            wv, bv = layer.weight.version, layer.bias.version
            if entry is None or entry[0] != wv or entry[1] != bv:
                w = np.ascontiguousarray(layer.active_weight(feature_slice), dtype=dtype)
                bias = np.ascontiguousarray(layer.bias.data, dtype=dtype)
                entry = (wv, bv, w, bias)
                self._entries[key] = entry
                self.packs += 1
            return entry[2], entry[3]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


@dataclass(frozen=True)
class _ConvStep:
    """Precompiled geometry of one conv (+ReLU, +optional pool) block."""

    layer: SlicedConv2d
    in_slice: ChannelSlice
    out_slice: ChannelSlice
    kernel: Tuple[int, int]
    stride: int
    padding: int
    in_hw: Tuple[int, int]    # unpadded input spatial size
    out_hw: Tuple[int, int]   # conv output spatial size
    pool: Optional[Tuple[int, int, Tuple[int, int]]]  # (kernel, stride, pooled_hw)
    src: str                  # padded input buffer
    cols: str                 # im2col columns buffer
    gemm: str                 # GEMM/epilogue buffer, (rows, C_out) NHWC-flat
    act: Optional[str]        # unpadded NCHW buffer (only where needed)
    dst: Optional[str]        # next step's padded input (None on the last conv)
    dst_padding: int          # that next step's padding


def _interior(buf: np.ndarray, n: int, padding: int, hw: Tuple[int, int]) -> np.ndarray:
    """First-``n``-rows view of a padded buffer's writable interior."""
    if padding == 0:
        return buf[:n]
    h, w = hw
    return buf[:n, :, padding : padding + h, padding : padding + w]


class InferencePlan:
    """One compiled ``(sub-network, batch-rows, dtype)`` forward pass."""

    def __init__(
        self,
        net,
        spec: SubNetSpec,
        batch_rows: int,
        dtype: np.dtype,
        steps: List[_ConvStep],
        feature_slice: ChannelSlice,
        buffers: List[BufferSpec],
        cache: PackedWeightCache,
        workspaces: int,
    ) -> None:
        self.net = net
        self.spec = spec
        self.width = spec.name
        self.batch_rows = batch_rows
        self.dtype = dtype
        self.cache = cache
        self._steps = steps
        self._feature_slice = feature_slice
        self._in_shape = (net.in_channels, net.image_size, net.image_size)
        self.workspaces = WorkspacePool(buffers, prealloc=workspaces)

    # -- compilation ----------------------------------------------------------

    @classmethod
    def compile(
        cls,
        model,
        width: Union[str, SubNetSpec, None] = None,
        *,
        batch_rows: int,
        dtype: Optional[np.dtype] = None,
        cache: Optional[PackedWeightCache] = None,
        workspaces: int = 1,
    ) -> "InferencePlan":
        """Walk ``model`` once and compile its serving pass.

        ``model`` is anything :class:`~repro.engine.session.InferenceSession`
        accepts: a ``SlimmableConvNet``, a ``SubNetworkView`` (its spec wins
        when ``width`` is omitted), or a model family plus a subnet name.
        ``dtype`` defaults to the active policy's inference dtype;
        ``batch_rows`` is the widest batch the plan's arenas can hold —
        smaller requests run in leading-row views of the same buffers.
        """
        if batch_rows <= 0:
            raise ValueError("batch_rows must be positive")
        net, spec = cls._resolve(model, width)
        dtype = np.dtype(dtype) if dtype is not None else compute_dtype(training=False)
        if cache is None:  # note: an empty cache is falsy (len 0) — test identity
            cache = PackedWeightCache()

        steps: List[_ConvStep] = []
        buffers: List[BufferSpec] = []
        dt = dtype.name
        size = net.image_size
        num = len(net.convs)
        if len(spec.conv_slices) != num:
            raise ValueError(
                f"spec {spec.name!r} has {len(spec.conv_slices)} conv slices, "
                f"net has {num}"
            )
        prev: Optional[ChannelSlice] = None
        paddings = [conv.padding for conv in net.convs]

        for i, (conv, out_sl) in enumerate(zip(net.convs, spec.conv_slices)):
            if not isinstance(conv, SlicedConv2d):
                raise TypeError(f"cannot compile layer {type(conv).__name__}")
            in_sl, out_sl = conv.resolve_slices(prev, out_sl)
            k = conv.kernel_size
            out_h = F.conv_out_size(size, k, conv.stride, conv.padding)
            out_w = out_h
            pool_layer = net.pools.get(i)
            pool = None
            after = (out_h, out_w)
            if pool_layer is not None:
                ph = F.conv_out_size(out_h, pool_layer.kernel_size, pool_layer.stride, 0)
                pool = (pool_layer.kernel_size, pool_layer.stride, (ph, ph))
                after = (ph, ph)

            src = f"in{i}"
            in_c = in_sl.width  # resolve_slices already applied the slice_input rule
            pad = conv.padding
            buffers.append(
                BufferSpec(
                    src,
                    (batch_rows, in_c, size + 2 * pad, size + 2 * pad),
                    dt,
                    zeroed=pad > 0,
                )
            )
            rows = batch_rows * out_h * out_w
            buffers.append(BufferSpec(f"cols{i}", (rows, in_c * k * k), dt))
            buffers.append(BufferSpec(f"gemm{i}", (rows, out_sl.width), dt))
            # The NHWC-flat GEMM result must land in NCHW somewhere: in a
            # dedicated act buffer when a pool reads it (or when it is the
            # final feature map), otherwise straight into the next conv's
            # padded input interior.
            last = i == num - 1
            act = f"act{i}" if (pool is not None or last) else None
            if act is not None:
                buffers.append(BufferSpec(act, (batch_rows, out_sl.width, out_h, out_w), dt))
            if last and pool is not None:
                # A pooled final conv writes its features into a dedicated
                # unpadded buffer (dst would otherwise be the next conv's
                # padded input).
                dst, dst_pad = f"pool{i}", 0
                buffers.append(
                    BufferSpec(dst, (batch_rows, out_sl.width, after[0], after[1]), dt)
                )
            elif last:
                dst, dst_pad = None, 0
            else:
                dst, dst_pad = f"in{i + 1}", paddings[i + 1]
            steps.append(
                _ConvStep(
                    layer=conv,
                    in_slice=in_sl,
                    out_slice=out_sl,
                    kernel=(k, k),
                    stride=conv.stride,
                    padding=pad,
                    in_hw=(size, size),
                    out_hw=(out_h, out_w),
                    pool=pool,
                    src=src,
                    cols=f"cols{i}",
                    gemm=f"gemm{i}",
                    act=act,
                    dst=dst,
                    dst_padding=dst_pad,
                )
            )
            size = after[0]
            prev = out_sl

        classifier = net.classifier
        if not isinstance(classifier, SlicedLinear):
            raise TypeError(f"cannot compile classifier {type(classifier).__name__}")
        feature_slice = classifier.resolve_feature_slice(
            net.feature_slice_for(spec.last_slice)
        )
        buffers.append(BufferSpec("logits", (batch_rows, classifier.out_features), dt))
        # Warm the packed cache at compile so the first request is already
        # on the steady-state path.
        for step in steps:
            cache.conv_block(step.layer, step.in_slice, step.out_slice, dtype)
        cache.linear_block(classifier, feature_slice, dtype)
        return cls(net, spec, batch_rows, dtype, steps, feature_slice, buffers, cache, workspaces)

    @staticmethod
    def _resolve(model, width: Union[str, SubNetSpec, None]):
        """Normalise the accepted model forms to ``(net, spec)``."""
        spec = width if isinstance(width, SubNetSpec) else None
        net = getattr(model, "net", model)
        if spec is None and width is None and hasattr(model, "spec") and isinstance(
            getattr(model, "spec", None), SubNetSpec
        ):
            spec = model.spec  # a SubNetworkView carries its own spec
        if spec is None:
            width_spec = getattr(net, "width_spec", None)
            if width_spec is None:
                raise TypeError(f"cannot compile a plan from {type(model).__name__}")
            spec = width_spec.find(width) if isinstance(width, str) else width_spec.full()
        if not hasattr(net, "convs") or not hasattr(net, "classifier"):
            raise TypeError(f"cannot compile a plan from {type(net).__name__}")
        return net, spec

    # -- admission ------------------------------------------------------------

    def accepts(self, x: np.ndarray) -> bool:
        """True when ``x`` can run on this plan under the active dtype policy."""
        return (
            x.ndim == 4
            and tuple(x.shape[1:]) == self._in_shape
            and 0 < x.shape[0] <= self.batch_rows
            and compute_dtype(training=False) == self.dtype
        )

    def accepts_parts(self, parts: Sequence[np.ndarray]) -> bool:
        return (
            len(parts) > 0
            and all(p.ndim == 4 and tuple(p.shape[1:]) == self._in_shape for p in parts)
            and 0 < sum(p.shape[0] for p in parts) <= self.batch_rows
            and compute_dtype(training=False) == self.dtype
        )

    # -- execution ------------------------------------------------------------

    def run(self, x: np.ndarray) -> np.ndarray:
        """One request through the compiled pass (thread-safe)."""
        return self.run_parts((x,))

    def run_parts(self, parts: Sequence[np.ndarray]) -> np.ndarray:
        """Run a micro-batch, scattering each part straight into the input arena.

        This is the batching fast path: the queue hands over the raw
        request arrays and the rows land in the plan's (padded) input
        buffer directly — no ``np.concatenate`` temporary.
        """
        if not parts:
            raise ValueError("run_parts needs at least one array")
        n = 0
        for p in parts:
            if p.ndim != 4 or tuple(p.shape[1:]) != self._in_shape:
                raise ValueError(
                    f"plan expects (*, {self._in_shape[0]}, {self._in_shape[1]}, "
                    f"{self._in_shape[2]}), got {p.shape}"
                )
            n += p.shape[0]
        if n > self.batch_rows:
            raise ValueError(f"{n} rows exceed the plan's {self.batch_rows}-row arena")
        with self.workspaces.checkout() as ws:
            return self._execute(ws, parts, n)

    def _execute(self, ws: Workspace, parts: Sequence[np.ndarray], n: int) -> np.ndarray:
        first = self._steps[0]
        src = ws[first.src]
        offset = 0
        for part in parts:
            k = part.shape[0]
            # Assignment casts to the compute dtype; padded borders were
            # zeroed at allocation and are never written, replacing the
            # per-call np.pad round-trip.
            np.copyto(
                _interior(src[offset : offset + k], k, first.padding, first.in_hw), part
            )
            offset += k

        x = src  # padded NCHW input of the current step
        for step in self._steps:
            out_h, out_w = step.out_hw
            rows = n * out_h * out_w
            cols = ws[step.cols][:rows]
            F.im2col_into(x[:n], step.kernel, step.stride, cols)
            w_mat, bias = self.cache.conv_block(
                step.layer, step.in_slice, step.out_slice, self.dtype
            )
            gemm = ws[step.gemm][:rows]
            F.gemm_bias_relu(cols, w_mat, bias, gemm)
            nchw = gemm.reshape(n, out_h, out_w, step.out_slice.width).transpose(0, 3, 1, 2)
            if step.act is not None:
                act = ws[step.act][:n]
                np.copyto(act, nchw)
                if step.pool is not None:
                    pk, ps, pooled_hw = step.pool
                    dst = _interior(ws[step.dst], n, step.dst_padding, pooled_hw)
                    F.maxpool2d_into(act, pk, ps, dst)
                    x = ws[step.dst]
                else:
                    x = ws[step.act]  # final feature map
            else:
                # No pool in between: transpose straight into the next
                # conv's padded interior.
                np.copyto(_interior(ws[step.dst], n, step.dst_padding, step.out_hw), nchw)
                x = ws[step.dst]

        features = x[:n].reshape(n, -1)
        w, b = self.cache.linear_block(self.net.classifier, self._feature_slice, self.dtype)
        logits = ws["logits"][:n]
        F.gemm_bias(features, w, b, logits)
        # The workspace buffer goes back into the pool; the caller gets an
        # owned copy (the only steady-state allocation on the hot path).
        return logits.copy()

    # -- cost hooks -----------------------------------------------------------

    def flops_per_image(self) -> int:
        """FLOPs of one image through this plan (from the compiled geometry)."""
        total = 0
        for step in self._steps:
            h, w = step.in_hw
            total += step.layer.flops_per_image(h, w, step.in_slice, step.out_slice)
        total += self.net.classifier.flops_per_image(self._feature_slice)
        return total

    def __repr__(self) -> str:
        return (
            f"InferencePlan({self.width}, rows={self.batch_rows}, "
            f"dtype={self.dtype.name}, convs={len(self._steps)})"
        )


def compile_width_plans(
    model,
    widths: Sequence[Union[str, SubNetSpec]],
    *,
    batch_rows: int,
    dtype: Optional[np.dtype] = None,
    cache: Optional[PackedWeightCache] = None,
    workspaces: int = 1,
) -> Dict[str, InferencePlan]:
    """One plan per width over a single shared packed cache.

    The serving frontend's bulk entry point: all plans alias one weight
    store and one :class:`PackedWeightCache`, so N widths cost N arena
    sets but zero duplicate weight packs.
    """
    if cache is None:  # an empty cache is falsy (len 0) — test identity
        cache = PackedWeightCache()
    plans: Dict[str, InferencePlan] = {}
    for width in widths:
        plan = InferencePlan.compile(
            model,
            width,
            batch_rows=batch_rows,
            dtype=dtype,
            cache=cache,
            workspaces=workspaces,
        )
        plans[plan.width] = plan
    return plans
