"""Trainable parameters.

A :class:`Parameter` owns a dense float array plus its gradient accumulator.
Slimmable layers (:mod:`repro.slimmable`) never copy parameter storage — they
take numpy *views* into ``Parameter.data`` so that sub-networks share weights,
which is the mechanism both incremental training (Xun et al., MLCAD 2019) and
the paper's Algorithm 1 rely on.

Gradient masking: ``Parameter.grad_mask`` (same shape, float 0/1) supports
freezing arbitrary weight regions, which incremental training uses to train
only the newly added channel group of each wider sub-network.

Version counter: ``Parameter.version`` increments on every mutation made
through the standard update paths (optimizer steps, :meth:`Parameter.copy_`,
``Module.load_state_dict``).  Derived caches — notably the packed
compute-dtype weight blocks in :mod:`repro.nn.plan` — key on it to detect
staleness without comparing array contents.  Code that writes ``.data``
in place through some other route must call :meth:`bump_version` itself.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class Parameter:
    """A trainable tensor with a gradient buffer and optional freeze mask."""

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        if not isinstance(data, np.ndarray):
            raise TypeError(f"Parameter data must be an ndarray, got {type(data).__name__}")
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.requires_grad = True
        self.grad_mask: Optional[np.ndarray] = None
        self._version = 0
        # Optional single-element int64 ndarray backing the counter.  When
        # the parameter storage lives in a shared-memory arena
        # (:mod:`repro.nn.shm`) the counter lives there too, so worker
        # processes observe parent-side bumps without any message traffic.
        self._version_slot: Optional[np.ndarray] = None

    @property
    def version(self) -> int:
        """Monotonic mutation counter (see module docstring)."""
        if self._version_slot is not None:
            return int(self._version_slot[0])
        return self._version

    def bump_version(self) -> None:
        """Mark the parameter values as changed (invalidates packed caches).

        Single-writer rule: when a shared version slot is attached, only
        the process that owns the weights (the serving parent) may bump —
        worker processes are readers.
        """
        if self._version_slot is not None:
            self._version_slot[0] += 1
        else:
            self._version += 1

    def attach_version_slot(self, slot: np.ndarray) -> None:
        """Back the version counter with a shared ``int64`` slot.

        ``slot`` is a one-element view into a shared-memory segment (see
        :class:`repro.nn.shm.SharedParameterStore`).  The slot's current
        value becomes the authoritative version; reads and bumps go
        through it from now on, making the counter visible across
        processes that map the same segment.
        """
        if slot.shape != (1,) or slot.dtype != np.int64:
            raise ValueError("version slot must be a one-element int64 array")
        self._version_slot = slot

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the gradient buffer (respects ``requires_grad``)."""
        if not self.requires_grad:
            return
        if grad.shape != self.grad.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name} shape {self.grad.shape}"
            )
        self.grad += grad

    def effective_grad(self) -> np.ndarray:
        """Gradient after applying the freeze mask (used by optimizers)."""
        if self.grad_mask is None:
            return self.grad
        return self.grad * self.grad_mask

    def set_freeze_mask(self, mask: Optional[np.ndarray]) -> None:
        """Install a 0/1 mask; entries with 0 never receive updates."""
        if mask is None:
            self.grad_mask = None
            return
        if mask.shape != self.data.shape:
            raise ValueError(f"mask shape {mask.shape} != parameter shape {self.data.shape}")
        self.grad_mask = mask.astype(np.float64)

    def copy_(self, other: "Parameter") -> None:
        """In-place copy of another parameter's values (shapes must match)."""
        if other.data.shape != self.data.shape:
            raise ValueError(f"cannot copy {other.data.shape} into {self.data.shape}")
        np.copyto(self.data, other.data)
        self.bump_version()

    def __repr__(self) -> str:
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
